package workload_test

import (
	"testing"

	"pebble/internal/backtrace"
	"pebble/internal/engine"
	"pebble/internal/nested"
	"pebble/internal/provenance"
	"pebble/internal/workload"
)

func TestGeneratorsAreDeterministic(t *testing.T) {
	s := workload.DefaultScale(1)
	a := workload.GenerateTwitter(s)
	b := workload.GenerateTwitter(s)
	if len(a) != len(b) || len(a) != s.Tweets() {
		t.Fatalf("twitter sizes: %d, %d, want %d", len(a), len(b), s.Tweets())
	}
	for i := range a {
		if !nested.Equal(a[i], b[i]) {
			t.Fatalf("twitter generation not deterministic at %d", i)
		}
	}
	d1 := workload.GenerateDBLP(s)
	d2 := workload.GenerateDBLP(s)
	if len(d1) != len(d2) || len(d1) < s.Records() {
		t.Fatalf("dblp sizes: %d, %d, want >= %d", len(d1), len(d2), s.Records())
	}
	for i := range d1 {
		if !nested.Equal(d1[i], d2[i]) {
			t.Fatalf("dblp generation not deterministic at %d", i)
		}
	}
	// Different seeds differ.
	s2 := s
	s2.Seed = 7
	c := workload.GenerateTwitter(s2)
	same := true
	for i := range a {
		if !nested.Equal(a[i], c[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical twitter data")
	}
}

func TestTwitterDataShape(t *testing.T) {
	tweets := workload.GenerateTwitter(workload.DefaultScale(1))
	var hot, bts, good, mentionsHot int
	for _, tw := range tweets {
		if err := nested.CheckHomogeneous(tw); err != nil {
			t.Fatalf("heterogeneous tweet: %v", err)
		}
		u, _ := tw.Get("user")
		if id, _ := attr(t, u, "id_str").AsString(); id == workload.HotUserID {
			hot++
		}
		text, _ := attr(t, tw, "text").AsString()
		if contains(text, workload.BTSHashtag) {
			bts++
		}
		if contains(text, workload.GoodWord) {
			good++
		}
		ms, _ := tw.Get("user_mentions")
		for _, m := range ms.Elems() {
			if id, _ := attr(t, m, "id_str").AsString(); id == workload.HotUserID {
				mentionsHot++
			}
		}
	}
	if hot < len(tweets)/10 {
		t.Errorf("hot user authors %d tweets, want >= %d", hot, len(tweets)/10)
	}
	if bts < len(tweets)/5 {
		t.Errorf("BTS tweets = %d, want >= %d", bts, len(tweets)/5)
	}
	if good == 0 || mentionsHot == 0 {
		t.Errorf("sentinels missing: good=%d mentionsHot=%d", good, mentionsHot)
	}
}

func TestDBLPDataShape(t *testing.T) {
	recs := workload.GenerateDBLP(workload.DefaultScale(1))
	byType := map[string]int{}
	var hotCrossrefs, hotProc, hotAuthor int
	for _, rec := range recs {
		rt, _ := attr(t, rec, "record_type").AsString()
		byType[rt]++
		if cr, ok := rec.Get("crossref"); ok {
			if s, _ := cr.AsString(); s == workload.HotProceedingKey {
				hotCrossrefs++
			}
		}
		if key, _ := attr(t, rec, "key").AsString(); key == workload.HotProceedingKey {
			hotProc++
		}
		if authors, ok := rec.Get("authors"); ok {
			for _, a := range authors.Elems() {
				if id, _ := attr(t, a, "id").AsString(); id == workload.HotAuthorID {
					hotAuthor++
				}
			}
		}
	}
	if byType["inproceedings"] < byType["proceedings"] {
		t.Errorf("type mix wrong: %v", byType)
	}
	if byType["proceedings"] == 0 || byType["article"] == 0 {
		t.Errorf("missing record types: %v", byType)
	}
	if hotProc != 1 {
		t.Errorf("hot proceedings emitted %d times, want once", hotProc)
	}
	if hotCrossrefs < len(recs)/20 {
		t.Errorf("hot crossrefs = %d, too few", hotCrossrefs)
	}
	if hotAuthor == 0 {
		t.Error("hot author never appears")
	}
}

// TestAllScenariosRunAndTrace executes every Tab. 7 scenario end to end:
// capture, pattern match, backtrace — and checks the provenance is non-empty
// and resolves to existing source rows.
func TestAllScenariosRunAndTrace(t *testing.T) {
	scale := workload.DefaultScale(1)
	for _, sc := range workload.AllScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			inputs := sc.Input(scale, 4)
			pipe := sc.Build()
			res, run, err := provenance.Capture(pipe, inputs, engine.Options{Partitions: 4})
			if err != nil {
				t.Fatalf("capture: %v", err)
			}
			if res.Output.Len() == 0 {
				t.Fatal("scenario produced no output")
			}
			b := sc.Pattern.Match(res.Output)
			if b.Len() == 0 {
				t.Fatalf("pattern matched nothing:\n%s", sc.Pattern)
			}
			traced, err := backtrace.Trace(run, pipe.Sink().ID(), b)
			if err != nil {
				t.Fatalf("trace: %v", err)
			}
			total := 0
			for oid, s := range traced.BySource {
				src, ok := res.Sources[oid]
				if !ok {
					t.Fatalf("trace reached unknown source %d", oid)
				}
				for _, it := range s.Items {
					if _, ok := src.FindByID(it.ID); !ok {
						t.Errorf("traced id %d not in source %d", it.ID, oid)
					}
				}
				total += s.Len()
			}
			if total == 0 {
				t.Error("backtrace returned no input items")
			}
		})
	}
}

// TestScenarioResultsAreDeterministic runs T4 and D4 twice and compares
// outputs value by value.
func TestScenarioResultsAreDeterministic(t *testing.T) {
	scale := workload.DefaultScale(1)
	for _, name := range []string{"T4", "D4"} {
		sc, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		run := func() []nested.Value {
			res, err := engine.Run(sc.Build(), sc.Input(scale, 3), engine.Options{Partitions: 3})
			if err != nil {
				t.Fatal(err)
			}
			return res.Output.Values()
		}
		a, b := run(), run()
		if len(a) != len(b) {
			t.Fatalf("%s: nondeterministic row count %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if !nested.Equal(a[i], b[i]) {
				t.Fatalf("%s: row %d differs", name, i)
			}
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := workload.ByName("T9"); err == nil {
		t.Error("unknown scenario should error")
	}
	sc, err := workload.ByName("D3")
	if err != nil || sc.Dataset != "dblp" {
		t.Errorf("ByName(D3) = %+v, %v", sc, err)
	}
	if len(workload.AllScenarios()) != 10 {
		t.Errorf("want 10 scenarios")
	}
}

func attr(t *testing.T, v nested.Value, name string) nested.Value {
	t.Helper()
	out, ok := v.Get(name)
	if !ok {
		t.Fatalf("attribute %q missing in %s", name, v)
	}
	return out
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestAnalyzerAcceptsAllScenarios type-checks every Tab. 7 scenario against
// its generated input schema — the analyzer's regression corpus.
func TestAnalyzerAcceptsAllScenarios(t *testing.T) {
	scale := workload.DefaultScale(1)
	for _, sc := range workload.AllScenarios() {
		inputs := sc.Input(scale, 2)
		if _, err := engine.Analyze(sc.Build(), engine.InferInputTypes(inputs)); err != nil {
			t.Errorf("%s: analyzer rejected the scenario: %v", sc.Name, err)
		}
	}
}

// TestExtensionScenarios runs the X-scenarios (extension operators) end to
// end with capture, analysis, pattern matching, and backtracing.
func TestExtensionScenarios(t *testing.T) {
	scale := workload.DefaultScale(1)
	for _, sc := range workload.ExtensionScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			inputs := sc.Input(scale, 3)
			pipe := sc.Build()
			if _, err := engine.Analyze(pipe, engine.InferInputTypes(inputs)); err != nil {
				t.Fatalf("analyze: %v", err)
			}
			res, run, err := provenance.Capture(pipe, inputs, engine.Options{Partitions: 3})
			if err != nil {
				t.Fatalf("capture: %v", err)
			}
			if res.Output.Len() == 0 {
				t.Fatal("no output")
			}
			b := sc.Pattern.Match(res.Output)
			if b.Len() == 0 {
				t.Fatalf("pattern matched nothing over:\n%v", res.Output.Values())
			}
			traced, err := backtrace.Trace(run, pipe.Sink().ID(), b)
			if err != nil {
				t.Fatalf("trace: %v", err)
			}
			total := 0
			for _, s := range traced.BySource {
				total += s.Len()
			}
			if total == 0 {
				t.Error("extension scenario traced no inputs")
			}
		})
	}
}

// TestX1TopsHotUser: the hot user must rank first in X1's top-5.
func TestX1TopsHotUser(t *testing.T) {
	sc := workload.ExtensionScenarios()[0]
	res, err := engine.Run(sc.Build(), sc.Input(workload.DefaultScale(1), 3), engine.Options{Partitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Len() != 5 {
		t.Fatalf("top-5 has %d rows", res.Output.Len())
	}
	first := res.Output.Rows()[0]
	if id, _ := attr(t, first.Value, "mid").AsString(); id != workload.HotUserID {
		t.Errorf("top mention = %q, want %q", id, workload.HotUserID)
	}
}

// TestX2KeepsEmptyProceedings: the left outer join retains proceedings
// without inproceedings (null n_papers).
func TestX2KeepsEmptyProceedings(t *testing.T) {
	sc := workload.ExtensionScenarios()[1]
	res, err := engine.Run(sc.Build(), sc.Input(workload.DefaultScale(1), 3), engine.Options{Partitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	var withNull, withCount int
	for _, r := range res.Output.Rows() {
		n := attr(t, r.Value, "n_papers")
		if n.IsNull() {
			withNull++
		} else {
			withCount++
		}
	}
	if withCount == 0 {
		t.Error("no proceedings with counts")
	}
	if withNull == 0 {
		t.Error("left outer join lost the proceedings without inproceedings")
	}
}
