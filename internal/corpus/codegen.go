package corpus

import (
	"fmt"
	"go/format"
	"strings"

	"pebble/internal/nested"
)

// GoSnippet renders the spec as a self-contained runnable Go file that
// rebuilds the failing pipeline and dataset with the plain engine builder
// API — no corpus dependency — so a reproducer can be pasted into a
// regression test and stepped through directly.
func GoSnippet(s *Spec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// Reproducer generated from corpus seed %d.\n", s.Seed)
	b.WriteString(`package main

import (
	"fmt"

	"pebble/internal/engine"
	"pebble/internal/nested"
	"pebble/internal/provenance"
	"pebble/internal/treepattern"
)

func main() {
`)
	writeRows(&b, "rows", s.Rows)
	if len(s.Aux) > 0 {
		writeRows(&b, "aux", s.Aux)
	}
	b.WriteString("\tp := engine.NewPipeline()\n")
	for i, st := range s.Steps {
		fmt.Fprintf(&b, "\top%d := %s\n", i, stepCall(st))
	}
	fmt.Fprintf(&b, "\tp.SetSink(op%d)\n", s.Sink)
	b.WriteString("\tgen := engine.NewIDGen(1)\n")
	b.WriteString("\tinputs := map[string]*engine.Dataset{\n")
	fmt.Fprintf(&b, "\t\t%q: engine.NewDataset(%q, rows, engine.DefaultPartitions, gen),\n", DatasetIn, DatasetIn)
	if len(s.Aux) > 0 {
		fmt.Fprintf(&b, "\t\t%q: engine.NewDataset(%q, aux, engine.DefaultPartitions, gen),\n", DatasetAux, DatasetAux)
	}
	b.WriteString("\t}\n")
	fmt.Fprintf(&b, "\tpattern := %s\n", patternExpr(s.Pattern))
	optsExpr := "engine.Options{}"
	if s.ShuffleJoin {
		optsExpr = "engine.Options{BroadcastJoinThreshold: -1}"
	}
	fmt.Fprintf(&b, "\tres, run, err := provenance.Capture(p, inputs, %s)\n", optsExpr)
	b.WriteString(`	if err != nil {
		panic(err)
	}
	_ = pattern
	fmt.Printf("rows=%d operators=%d\n", len(res.Output.Values()), len(run.Operators()))
}
`)
	// Reproducers land in testdata and regression tests verbatim, so they
	// must be gofmt-clean (alignment of literals depends on their widths). A
	// failure to format means the template emitted invalid Go; return it raw
	// so the caller's parse error points at the real problem.
	src := b.String()
	if fmtd, err := format.Source([]byte(src)); err == nil {
		return string(fmtd)
	}
	return src
}

func writeRows(b *strings.Builder, name string, rows []nested.Value) {
	fmt.Fprintf(b, "\t%s := []nested.Value{\n", name)
	for _, v := range rows {
		fmt.Fprintf(b, "\t\t%s,\n", valueExpr(v))
	}
	b.WriteString("\t}\n")
}

// valueExpr renders a nested value as a Go constructor expression.
func valueExpr(v nested.Value) string {
	switch v.Kind() {
	case nested.KindInt:
		i, _ := v.AsInt()
		return fmt.Sprintf("nested.Int(%d)", i)
	case nested.KindString:
		s, _ := v.AsString()
		return fmt.Sprintf("nested.StringVal(%q)", s)
	case nested.KindBool:
		bv, _ := v.AsBool()
		return fmt.Sprintf("nested.Bool(%v)", bv)
	case nested.KindBag:
		parts := make([]string, 0, len(v.Elems()))
		for _, e := range v.Elems() {
			parts = append(parts, valueExpr(e))
		}
		return "nested.Bag(" + strings.Join(parts, ", ") + ")"
	case nested.KindItem:
		parts := make([]string, 0, len(v.Fields()))
		for _, f := range v.Fields() {
			parts = append(parts, fmt.Sprintf("nested.F(%q, %s)", f.Name, valueExpr(f.Value)))
		}
		return "nested.Item(" + strings.Join(parts, ", ") + ")"
	default:
		return "nested.Null()"
	}
}

func predExpr(p *Pred) string {
	if p == nil || p.True {
		return "engine.LitBool(true)"
	}
	lit := fmt.Sprintf("engine.LitInt(%d)", p.Int)
	if p.IsStr {
		lit = fmt.Sprintf("engine.LitString(%q)", p.Str)
	}
	op := map[string]string{"eq": "Eq", "ne": "Ne", "le": "Le", "gt": "Gt"}[p.Op]
	if op == "" {
		return "engine.LitBool(true)"
	}
	return fmt.Sprintf("engine.%s(engine.Col(%q), %s)", op, p.Col, lit)
}

func stepCall(st Step) string {
	switch st.Op {
	case StepSource:
		return fmt.Sprintf("p.Source(%q)", st.Dataset)
	case StepFilter:
		return fmt.Sprintf("p.Filter(op%d, %s)", st.In, predExpr(st.Pred))
	case StepSelect:
		parts := make([]string, 0, len(st.Fields))
		for _, f := range st.Fields {
			parts = append(parts, fmt.Sprintf("engine.Column(%q, %q)", f.Name, f.Col))
		}
		return fmt.Sprintf("p.Select(op%d, %s)", st.In, strings.Join(parts, ", "))
	case StepFlatten:
		return fmt.Sprintf("p.Flatten(op%d, %q, %q)", st.In, st.FlattenCol, st.FlattenAs)
	case StepAggregate:
		keys := make([]string, 0, 2)
		for _, k := range st.groupKeys() {
			keys = append(keys, fmt.Sprintf("engine.Key(%q)", k))
		}
		aggs := make([]string, 0, 3)
		for _, ag := range st.aggSpecs() {
			aggs = append(aggs, fmt.Sprintf("engine.Agg(%q, %q, %q)", ag.Fn, ag.In, ag.Out))
		}
		return fmt.Sprintf("p.Aggregate(op%d, []engine.GroupKey{%s}, []engine.AggSpec{%s})",
			st.In, strings.Join(keys, ", "), strings.Join(aggs, ", "))
	case StepUnion:
		return fmt.Sprintf("p.Union(op%d, op%d)", st.In, st.In2)
	case StepJoin:
		return fmt.Sprintf("p.Join(op%d, op%d, engine.Col(%q), engine.Col(%q))",
			st.In, st.In2, st.JoinLeftKey, st.JoinRightKey)
	case StepDistinct:
		return fmt.Sprintf("p.Distinct(op%d)", st.In)
	case StepOrderBy:
		return fmt.Sprintf("p.OrderBy(op%d, %v, engine.Col(%q))", st.In, st.SortDesc, st.SortKey)
	case StepLimit:
		return fmt.Sprintf("p.Limit(op%d, %d)", st.In, st.Limit)
	}
	return fmt.Sprintf("/* unknown step %q */ nil", st.Op)
}

func patternExpr(p *PatternSpec) string {
	if p == nil {
		return "treepattern.New()"
	}
	ctor := "Child"
	if p.Desc {
		ctor = "Desc"
	}
	expr := fmt.Sprintf("treepattern.%s(%q)", ctor, p.Attr)
	switch p.Kind {
	case "eq-int":
		expr += fmt.Sprintf(".WithEq(nested.Int(%d))", p.Int)
	case "eq-str":
		expr += fmt.Sprintf(".WithEq(nested.StringVal(%q))", p.Str)
	case "contains":
		expr += fmt.Sprintf(".WithContains(%q)", p.Str)
	case "lt-int":
		expr += fmt.Sprintf(".WithLt(nested.Int(%d))", p.Int)
	case "gt-int":
		expr += fmt.Sprintf(".WithGt(nested.Int(%d))", p.Int)
	}
	if p.MinCount > 0 || p.MaxCount > 0 {
		expr += fmt.Sprintf(".WithCount(%d, %d)", p.MinCount, p.MaxCount)
	}
	return fmt.Sprintf("treepattern.New(%s)", expr)
}
