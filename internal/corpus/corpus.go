// Package corpus generates seeded random test cases — nested datasets plus
// well-formed operator pipelines plus tree-pattern provenance questions — in
// a declarative form that can be rebuilt, serialized, mutated (shrunk to
// minimal reproducers), and rendered as runnable Go code.
//
// It is the generator that was originally buried inside the invariants
// property tests, extracted and generalized so the invariants suite, the
// differential oracle (internal/oracle), the native fuzz targets, and the
// cmd/oracle soak runner all draw from one corpus: every generated pipeline
// is schema-tracked during construction, so all operators — filter, select,
// flatten, join, union, grouping/aggregation, distinct, orderBy, limit — can
// be combined freely without producing ill-typed plans, and every generated
// tree pattern (including the extended contains/range/count constraints)
// refers to attributes that actually exist in the sink schema.
package corpus

import (
	"fmt"
	"math/rand"

	"pebble/internal/nested"
)

// Attribute type tags used while tracking the schema during generation.
const (
	typInt      = "int"
	typStr      = "str"
	typStrBag   = "strbag"
	typSubBag   = "subbag"
	typSubItem  = "subitem"
	typOther    = "other"
	typConsumed = "consumedbag"
)

var (
	cats  = []string{"a", "b", "c", "d"}
	words = []string{"x", "y", "z", "w"}
)

// RandRows builds a random input for dataset "in" with the fixed base schema
// {id:int, cat:string, val:int, tags:{{string}}, subs:{{<k:string, v:int>}}}.
func RandRows(r *rand.Rand, n int) []nested.Value {
	out := make([]nested.Value, 0, n)
	for i := 0; i < n; i++ {
		nt := r.Intn(4)
		tags := make([]nested.Value, 0, nt)
		for j := 0; j < nt; j++ {
			tags = append(tags, nested.StringVal(words[r.Intn(len(words))]))
		}
		ns := r.Intn(3)
		subs := make([]nested.Value, 0, ns)
		for j := 0; j < ns; j++ {
			subs = append(subs, nested.Item(
				nested.F("k", nested.StringVal(words[r.Intn(len(words))])),
				nested.F("v", nested.Int(int64(r.Intn(10)))),
			))
		}
		out = append(out, nested.Item(
			nested.F("id", nested.Int(int64(i))),
			nested.F("cat", nested.StringVal(cats[r.Intn(len(cats))])),
			nested.F("val", nested.Int(int64(r.Intn(20)))),
			nested.F("tags", nested.Bag(tags...)),
			nested.F("subs", nested.Bag(subs...)),
		))
	}
	return out
}

// RandAuxRows builds a random input for the join side dataset "aux" with the
// schema {acat:string|null, aw:int}. Categories repeat, so joins fan out;
// about one key in six is null, so every join exercises the null-key build
// and probe paths of both executors.
func RandAuxRows(r *rand.Rand, n int) []nested.Value {
	out := make([]nested.Value, 0, n)
	for i := 0; i < n; i++ {
		acat := nested.StringVal(cats[r.Intn(len(cats))])
		if r.Intn(6) == 0 {
			acat = nested.Null()
		}
		out = append(out, nested.Item(
			nested.F("acat", acat),
			nested.F("aw", nested.Int(int64(r.Intn(50)))),
		))
	}
	return out
}

// genState tracks the sink schema while the generator appends steps, so every
// generated pipeline is well-formed. attrs maps attribute name to a coarse
// type tag (typInt, typStr, ...).
type genState struct {
	cur   int
	attrs map[string]string
}

func baseAttrs() map[string]string {
	return map[string]string{
		"id": typInt, "cat": typStr, "val": typInt, "tags": typStrBag, "subs": typSubBag,
	}
}

// Generate builds the deterministic random test case for a seed: a dataset,
// a pipeline of 2–6 operators (plus the aux source chain when a join is
// drawn), and a tree-pattern question over the sink schema.
func Generate(seed int64) *Spec {
	r := rand.New(rand.NewSource(seed))
	s := &Spec{Seed: seed}
	n := 12 + r.Intn(24)
	if r.Intn(12) == 0 {
		// Occasionally straddle the morsel boundary (the engine's batch size
		// is 256) so multi-morsel kernel paths — partial last batches, morsel
		// handoff in joins and aggregates — get corpus coverage end to end.
		n = 255 + r.Intn(3)
	}
	s.Rows = RandRows(r, n)
	s.Steps = append(s.Steps, Step{Op: StepSource, In: -1, In2: -1, Dataset: DatasetIn})
	st := &genState{cur: 0, attrs: baseAttrs()}
	steps := 2 + r.Intn(5)
	for i := 0; i < steps; i++ {
		randStep(r, s, st)
	}
	s.Sink = st.cur
	s.Pattern = randPattern(r, st.attrs)
	return s
}

// randStep appends one random well-formed step (or occasionally a two-step
// join subplan) and advances the state.
func randStep(r *rand.Rand, s *Spec, st *genState) {
	choices := []string{StepFilter, StepFilter, StepSelect}
	if st.attrs["tags"] == typStrBag || st.attrs["subs"] == typSubBag {
		choices = append(choices, StepFlatten, StepFlatten)
	}
	// Joins and aggregates get double weight: they are the operators with
	// vectorized kernel state (hash tables, accumulator arrays), so the
	// corpus leans toward join+aggregate-heavy plans.
	if st.attrs["cat"] == typStr && (st.attrs["val"] == typInt || st.attrs["id"] == typInt) {
		choices = append(choices, StepAggregate, StepAggregate)
	}
	if len(st.attrs) > 0 {
		choices = append(choices, StepUnion, StepDistinct, StepOrderBy, StepLimit)
	}
	if st.attrs["cat"] == typStr && len(s.Aux) == 0 {
		choices = append(choices, StepJoin, StepJoin)
	}
	switch choices[r.Intn(len(choices))] {
	case StepFilter:
		st.cur = s.push(Step{Op: StepFilter, In: st.cur, In2: -1, Pred: randPred(r, st.attrs)})
	case StepSelect:
		fields, attrs := randSelect(r, st.attrs)
		st.cur = s.push(Step{Op: StepSelect, In: st.cur, In2: -1, Fields: fields})
		st.attrs = attrs
	case StepFlatten:
		if st.attrs["tags"] == typStrBag && (st.attrs["subs"] != typSubBag || r.Intn(2) == 0) {
			attrs := copyAttrs(st.attrs)
			attrs["tag"] = typStr
			attrs["tags"] = typConsumed
			st.cur = s.push(Step{Op: StepFlatten, In: st.cur, In2: -1, FlattenCol: "tags", FlattenAs: "tag"})
			st.attrs = attrs
			return
		}
		attrs := copyAttrs(st.attrs)
		attrs["sub"] = typSubItem
		attrs["subs"] = typConsumed
		st.cur = s.push(Step{Op: StepFlatten, In: st.cur, In2: -1, FlattenCol: "subs", FlattenAs: "sub"})
		st.attrs = attrs
	case StepAggregate:
		aggIn := "val"
		if st.attrs["val"] != typInt {
			aggIn = "id"
		}
		// Grouping keys: always cat, sometimes joined by another string
		// attribute (a flattened tag or the join-side acat) for composite
		// group keys.
		keys := []string{"cat"}
		for _, extra := range []string{"tag", "acat"} {
			if st.attrs[extra] == typStr && r.Intn(3) == 0 {
				keys = append(keys, extra)
			}
		}
		// Aggregate inputs stay int-typed so numeric functions cannot fail;
		// 1–3 computations per step cover the shared-column decode (several
		// aggregates over one input) and the mixed-accumulator layouts.
		ints := []string{aggIn}
		for _, name := range []string{"aw", "subv"} {
			if st.attrs[name] == typInt {
				ints = append(ints, name)
			}
		}
		fns := []string{"collect_list", "collect_set", "sum", "count", "max", "min", "avg"}
		nAggs := 1 + r.Intn(3)
		aggs := make([]AggStep, 0, nAggs)
		attrs := map[string]string{}
		for _, k := range keys {
			attrs[k] = typStr
		}
		for j := 0; j < nAggs; j++ {
			out := "agg_out"
			if j > 0 {
				out = fmt.Sprintf("agg_out%d", j+1)
			}
			aggs = append(aggs, AggStep{Fn: fns[r.Intn(len(fns))], In: ints[r.Intn(len(ints))], Out: out})
			attrs[out] = typOther
		}
		stp := Step{Op: StepAggregate, In: st.cur, In2: -1}
		if len(keys) == 1 && len(aggs) == 1 {
			// Keep the legacy single-aggregate spelling so simple generated
			// specs stay textually comparable with committed reproducers.
			stp.GroupBy, stp.AggFn, stp.AggIn, stp.AggOut = keys[0], aggs[0].Fn, aggs[0].In, aggs[0].Out
		} else {
			stp.GroupBys, stp.Aggs = keys, aggs
		}
		st.cur = s.push(stp)
		st.attrs = attrs
	case StepUnion:
		// Union with itself keeps the schema and doubles multiplicities; the
		// same source feeding two edges exercises the shared-predecessor
		// paths of backtracing.
		st.cur = s.push(Step{Op: StepUnion, In: st.cur, In2: st.cur})
	case StepDistinct:
		st.cur = s.push(Step{Op: StepDistinct, In: st.cur, In2: -1})
	case StepOrderBy:
		key := "cat"
		if st.attrs["val"] == typInt && r.Intn(2) == 0 {
			key = "val"
		}
		if st.attrs[key] == "" || st.attrs[key] == typConsumed {
			return
		}
		st.cur = s.push(Step{Op: StepOrderBy, In: st.cur, In2: -1, SortKey: key, SortDesc: r.Intn(2) == 0})
	case StepLimit:
		st.cur = s.push(Step{Op: StepLimit, In: st.cur, In2: -1, Limit: 5 + r.Intn(20)})
	case StepJoin:
		s.Aux = RandAuxRows(r, 6+r.Intn(8))
		// Half the specs with a join pin it to the shuffle path; the other
		// half keep the default threshold, which broadcasts at corpus sizes.
		s.ShuffleJoin = r.Intn(2) == 0
		aux := s.push(Step{Op: StepSource, In: -1, In2: -1, Dataset: DatasetAux})
		st.cur = s.push(Step{Op: StepJoin, In: st.cur, In2: aux,
			JoinLeftKey: "cat", JoinRightKey: "acat"})
		attrs := copyAttrs(st.attrs)
		attrs["acat"] = typStr
		attrs["aw"] = typInt
		st.attrs = attrs
	}
}

func randPred(r *rand.Rand, attrs map[string]string) *Pred {
	var preds []*Pred
	if attrs["val"] == typInt {
		preds = append(preds, &Pred{Col: "val", Op: "le", Int: int64(5 + r.Intn(15))})
	}
	if attrs["cat"] == typStr {
		preds = append(preds, &Pred{Col: "cat", Op: "ne", Str: cats[r.Intn(len(cats))], IsStr: true})
	}
	if attrs["tag"] == typStr {
		preds = append(preds, &Pred{Col: "tag", Op: "ne", Str: "w", IsStr: true})
	}
	if attrs["sub"] == typSubItem {
		preds = append(preds, &Pred{Col: "sub.v", Op: "le", Int: int64(2 + r.Intn(7))})
	}
	if attrs["aw"] == typInt {
		preds = append(preds, &Pred{Col: "aw", Op: "gt", Int: int64(r.Intn(25))})
	}
	if len(preds) == 0 {
		return &Pred{True: true}
	}
	return preds[r.Intn(len(preds))]
}

func randSelect(r *rand.Rand, in map[string]string) ([]FieldSpec, map[string]string) {
	var fields []FieldSpec
	attrs := map[string]string{}
	for _, name := range sortedKeys(in) {
		typ := in[name]
		if typ == typConsumed {
			continue
		}
		if r.Intn(4) == 0 { // drop ~25% of attributes
			continue
		}
		fields = append(fields, FieldSpec{Name: name, Col: name})
		attrs[name] = typ
	}
	// Occasionally project a nested access path out of the sub item,
	// exercising attribute-level (rather than item-level) projections.
	if in["sub"] == typSubItem && r.Intn(3) == 0 {
		fields = append(fields, FieldSpec{Name: "subv", Col: "sub.v"})
		attrs["subv"] = typInt
	}
	// Keep at least cat and one more attribute so later steps stay possible.
	if _, ok := attrs["cat"]; !ok && in["cat"] != "" && in["cat"] != typConsumed {
		fields = append(fields, FieldSpec{Name: "cat", Col: "cat"})
		attrs["cat"] = in["cat"]
	}
	if len(attrs) < 2 {
		for _, name := range sortedKeys(in) {
			typ := in[name]
			if typ == typConsumed || attrs[name] != "" {
				continue
			}
			fields = append(fields, FieldSpec{Name: name, Col: name})
			attrs[name] = typ
			break
		}
	}
	return fields, attrs
}

// randPattern draws a tree-pattern question over the sink schema: half the
// time the match-all pattern (trace the whole result), otherwise a single
// constrained node covering the extended constraint set — value equality,
// substring containment, open range bounds, and occurrence counts.
func randPattern(r *rand.Rand, attrs map[string]string) *PatternSpec {
	if r.Intn(2) == 0 {
		return nil // match-all
	}
	var cands []*PatternSpec
	for _, name := range sortedKeys(attrs) {
		switch attrs[name] {
		case typInt:
			cands = append(cands,
				&PatternSpec{Attr: name, Kind: "lt-int", Int: int64(3 + r.Intn(18))},
				&PatternSpec{Attr: name, Kind: "gt-int", Int: int64(r.Intn(15))},
				&PatternSpec{Attr: name, Kind: "eq-int", Int: int64(r.Intn(20))},
			)
		case typStr:
			cands = append(cands,
				&PatternSpec{Attr: name, Kind: "eq-str", Str: cats[r.Intn(len(cats))]},
				&PatternSpec{Attr: name, Kind: "contains", Str: words[r.Intn(len(words))]},
			)
		case typSubBag:
			c := &PatternSpec{Attr: "k", Desc: true, Kind: "eq-str", Str: words[r.Intn(len(words))]}
			if r.Intn(2) == 0 {
				c.MinCount, c.MaxCount = 1, 2
			}
			cands = append(cands, c,
				&PatternSpec{Attr: "v", Desc: true, Kind: "lt-int", Int: int64(2 + r.Intn(8))})
		case typSubItem:
			cands = append(cands, &PatternSpec{Attr: "v", Desc: true, Kind: "lt-int", Int: int64(2 + r.Intn(8))})
		}
	}
	if len(cands) == 0 {
		return nil
	}
	return cands[r.Intn(len(cands))]
}

func copyAttrs(in map[string]string) map[string]string {
	out := make(map[string]string, len(in)+1)
	for k, v := range in {
		out[k] = v
	}
	return out
}
