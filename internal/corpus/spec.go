package corpus

import (
	"encoding/json"
	"fmt"
	"sort"

	"pebble/internal/engine"
	"pebble/internal/nested"
	"pebble/internal/treepattern"
)

// Step operator kinds. They mirror engine.OpType but stay plain strings so a
// Spec is trivially serializable and diffable.
const (
	StepSource    = "source"
	StepFilter    = "filter"
	StepSelect    = "select"
	StepFlatten   = "flatten"
	StepAggregate = "aggregate"
	StepUnion     = "union"
	StepJoin      = "join"
	StepDistinct  = "distinct"
	StepOrderBy   = "orderby"
	StepLimit     = "limit"
)

// The dataset names generated specs read from.
const (
	DatasetIn  = "in"
	DatasetAux = "aux"
)

// Pred is a serializable filter predicate: Col <op> literal, with op one of
// "eq", "ne", "le", "gt". True short-circuits to a constant-true predicate.
type Pred struct {
	Col   string `json:"col,omitempty"`
	Op    string `json:"op,omitempty"`
	Int   int64  `json:"int,omitempty"`
	Str   string `json:"str,omitempty"`
	IsStr bool   `json:"isStr,omitempty"`
	True  bool   `json:"true,omitempty"`
}

// Expr builds the engine expression for the predicate.
func (p *Pred) Expr() engine.Expr {
	if p == nil || p.True {
		return engine.LitBool(true)
	}
	var lit engine.Expr
	if p.IsStr {
		lit = engine.LitString(p.Str)
	} else {
		lit = engine.LitInt(p.Int)
	}
	col := engine.Col(p.Col)
	switch p.Op {
	case "eq":
		return engine.Eq(col, lit)
	case "ne":
		return engine.Ne(col, lit)
	case "le":
		return engine.Le(col, lit)
	case "gt":
		return engine.Gt(col, lit)
	}
	return engine.LitBool(true)
}

// FieldSpec is one select projection: output name plus the access path.
type FieldSpec struct {
	Name string `json:"name"`
	Col  string `json:"col"`
}

// AggStep is one aggregate computation inside an aggregate step: function
// name (an engine.AggFunc string), input attribute, and output attribute.
type AggStep struct {
	Fn  string `json:"fn"`
	In  string `json:"in"`
	Out string `json:"out"`
}

// PatternSpec is a serializable single-node tree pattern with the extended
// constraint set: equality, containment, open range bounds, and counts.
// Kind is one of "eq-int", "eq-str", "contains", "lt-int", "gt-int".
type PatternSpec struct {
	Attr     string `json:"attr"`
	Desc     bool   `json:"desc,omitempty"`
	Kind     string `json:"kind"`
	Int      int64  `json:"int,omitempty"`
	Str      string `json:"str,omitempty"`
	MinCount int    `json:"minCount,omitempty"`
	MaxCount int    `json:"maxCount,omitempty"`
}

// Step is one declarative pipeline operator. In and In2 index into
// Spec.Steps (-1 when absent). Parameter fields are populated by Op kind.
type Step struct {
	Op  string `json:"op"`
	In  int    `json:"in"`
	In2 int    `json:"in2"`

	Dataset      string      `json:"dataset,omitempty"`
	Pred         *Pred       `json:"pred,omitempty"`
	Fields       []FieldSpec `json:"fields,omitempty"`
	FlattenCol   string      `json:"flattenCol,omitempty"`
	FlattenAs    string      `json:"flattenAs,omitempty"`
	GroupBy      string      `json:"groupBy,omitempty"`
	AggFn        string      `json:"aggFn,omitempty"`
	AggIn        string      `json:"aggIn,omitempty"`
	AggOut       string      `json:"aggOut,omitempty"`
	GroupBys     []string    `json:"groupBys,omitempty"`
	Aggs         []AggStep   `json:"aggs,omitempty"`
	JoinLeftKey  string      `json:"joinLeftKey,omitempty"`
	JoinRightKey string      `json:"joinRightKey,omitempty"`
	SortKey      string      `json:"sortKey,omitempty"`
	SortDesc     bool        `json:"sortDesc,omitempty"`
	Limit        int         `json:"limit,omitempty"`
}

// groupKeys returns an aggregate step's grouping attributes: the plural
// GroupBys when present, else the legacy single GroupBy. Committed repro
// specs predate the plural form, so both spellings must stay loadable.
func (st *Step) groupKeys() []string {
	if len(st.GroupBys) > 0 {
		return st.GroupBys
	}
	return []string{st.GroupBy}
}

// aggSpecs returns an aggregate step's computations, normalizing the legacy
// single-aggregate fields (AggFn/AggIn/AggOut) into the plural form.
func (st *Step) aggSpecs() []AggStep {
	if len(st.Aggs) > 0 {
		return st.Aggs
	}
	return []AggStep{{Fn: st.AggFn, In: st.AggIn, Out: st.AggOut}}
}

// Spec is one generated test case: datasets, pipeline, and the tree-pattern
// provenance question. A nil Pattern means "trace the whole result".
type Spec struct {
	Seed    int64          `json:"seed"`
	Rows    []nested.Value `json:"-"`
	Aux     []nested.Value `json:"-"`
	Steps   []Step         `json:"steps"`
	Sink    int            `json:"sink"`
	Pattern *PatternSpec   `json:"pattern,omitempty"`
	// ShuffleJoin pins every join in the spec to the repartition (shuffle)
	// path by disabling the broadcast threshold. Corpus datasets are small
	// enough that the default threshold would otherwise route every join
	// through the broadcast kernels; carrying the shape on the spec means
	// both kernels get differential coverage and a shrunk reproducer replays
	// with the join shape that exposed the disagreement.
	ShuffleJoin bool `json:"shuffleJoin,omitempty"`
}

// ExecOptions returns base with the spec's execution-shape knobs applied;
// every harness that executes a spec (oracle, invariants, fuzz) must build
// its engine options through this so serialized specs replay faithfully.
func (s *Spec) ExecOptions(base engine.Options) engine.Options {
	if s.ShuffleJoin {
		base.BroadcastJoinThreshold = -1
	}
	return base
}

// push appends a step and returns its index.
func (s *Spec) push(st Step) int {
	s.Steps = append(s.Steps, st)
	return len(s.Steps) - 1
}

// Build constructs the engine pipeline described by the spec. It validates
// structural well-formedness; a panic from a malformed parameter (e.g. an
// unparsable access path in a hand-edited spec) is converted into an error.
func (s *Spec) Build() (p *engine.Pipeline, err error) {
	defer func() {
		if r := recover(); r != nil {
			p, err = nil, fmt.Errorf("corpus: build panic: %v", r)
		}
	}()
	p = engine.NewPipeline()
	ops := make([]*engine.Op, len(s.Steps))
	in := func(idx int) (*engine.Op, error) {
		if idx < 0 || idx >= len(ops) || ops[idx] == nil {
			return nil, fmt.Errorf("corpus: step references invalid input %d", idx)
		}
		return ops[idx], nil
	}
	for i, st := range s.Steps {
		var a, b *engine.Op
		if st.Op != StepSource {
			if a, err = in(st.In); err != nil {
				return nil, err
			}
		}
		switch st.Op {
		case StepSource:
			ops[i] = p.Source(st.Dataset)
		case StepFilter:
			ops[i] = p.Filter(a, st.Pred.Expr())
		case StepSelect:
			fields := make([]engine.SelectField, 0, len(st.Fields))
			for _, f := range st.Fields {
				fields = append(fields, engine.Column(f.Name, f.Col))
			}
			ops[i] = p.Select(a, fields...)
		case StepFlatten:
			ops[i] = p.Flatten(a, st.FlattenCol, st.FlattenAs)
		case StepAggregate:
			var keys []engine.GroupKey
			for _, k := range st.groupKeys() {
				keys = append(keys, engine.Key(k))
			}
			var aggs []engine.AggSpec
			for _, ag := range st.aggSpecs() {
				aggs = append(aggs, engine.Agg(engine.AggFunc(ag.Fn), ag.In, ag.Out))
			}
			ops[i] = p.Aggregate(a, keys, aggs)
		case StepUnion:
			if b, err = in(st.In2); err != nil {
				return nil, err
			}
			ops[i] = p.Union(a, b)
		case StepJoin:
			if b, err = in(st.In2); err != nil {
				return nil, err
			}
			ops[i] = p.Join(a, b, engine.Col(st.JoinLeftKey), engine.Col(st.JoinRightKey))
		case StepDistinct:
			ops[i] = p.Distinct(a)
		case StepOrderBy:
			ops[i] = p.OrderBy(a, st.SortDesc, engine.Col(st.SortKey))
		case StepLimit:
			ops[i] = p.Limit(a, st.Limit)
		default:
			return nil, fmt.Errorf("corpus: unknown step op %q", st.Op)
		}
	}
	if s.Sink < 0 || s.Sink >= len(ops) {
		return nil, fmt.Errorf("corpus: sink index %d out of range", s.Sink)
	}
	p.SetSink(ops[s.Sink])
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Inputs builds the raw input datasets with a fresh identifier generator, so
// independent executions see identical row identifiers.
func (s *Spec) Inputs(partitions int) map[string]*engine.Dataset {
	gen := engine.NewIDGen(1)
	inputs := map[string]*engine.Dataset{
		DatasetIn: engine.NewDataset(DatasetIn, s.Rows, partitions, gen),
	}
	for _, st := range s.Steps {
		if st.Op == StepSource && st.Dataset == DatasetAux {
			inputs[DatasetAux] = engine.NewDataset(DatasetAux, s.Aux, partitions, gen)
			break
		}
	}
	return inputs
}

// BuildPattern constructs the tree pattern of the spec's provenance
// question; a nil PatternSpec yields the match-all pattern.
func (s *Spec) BuildPattern() *treepattern.Pattern {
	p := s.Pattern
	if p == nil {
		return treepattern.New()
	}
	var n *treepattern.Node
	if p.Desc {
		n = treepattern.Desc(p.Attr)
	} else {
		n = treepattern.Child(p.Attr)
	}
	switch p.Kind {
	case "eq-int":
		n = n.WithEq(nested.Int(p.Int))
	case "eq-str":
		n = n.WithEq(nested.StringVal(p.Str))
	case "contains":
		n = n.WithContains(p.Str)
	case "lt-int":
		n = n.WithLt(nested.Int(p.Int))
	case "gt-int":
		n = n.WithGt(nested.Int(p.Int))
	}
	if p.MinCount > 0 || p.MaxCount > 0 {
		n = n.WithCount(p.MinCount, p.MaxCount)
	}
	return treepattern.New(n)
}

// HasStep reports whether any step has the given op kind.
func (s *Spec) HasStep(op string) bool {
	for _, st := range s.Steps {
		if st.Op == op {
			return true
		}
	}
	return false
}

// NumOps returns the number of pipeline operators (steps).
func (s *Spec) NumOps() int { return len(s.Steps) }

// AggOutputsReachSink reports whether every aggregate step's output
// attribute provably survives — possibly renamed by selects or consumed by
// a later aggregate — into the sink's row values. When it does, a
// full-result structural backtrace addresses the aggregated value, so every
// group member is marked contributing and the structural row set equals
// Titian-style lineage. When an aggregate output is dropped (e.g. by a
// downstream projection), queries can address only the grouping key and
// Alg. 4 deliberately marks no group member relevant (Ex. 6.6): structural
// provenance is then strictly finer than lineage, and callers comparing the
// two must settle for the subset relation. The propagation is conservative:
// any doubt returns false.
func (s *Spec) AggOutputsReachSink() bool {
	// alias[i] is the set of output attribute names of step i that stand in
	// for some aggregate's output. Steps only reference earlier indices, so
	// one forward pass suffices.
	alias := make([]map[string]bool, len(s.Steps))
	ok := true
	for i, st := range s.Steps {
		switch st.Op {
		case StepSource:
			alias[i] = nil
		case StepSelect:
			in := alias[st.In]
			out := map[string]bool{}
			kept := map[string]bool{}
			for _, f := range st.Fields {
				if in[f.Col] {
					out[f.Name] = true
					kept[f.Col] = true
				}
			}
			// kept ⊆ in by construction, so a dropped alias shows as a
			// smaller kept set.
			if len(kept) != len(in) {
				ok = false
			}
			alias[i] = out
		case StepAggregate:
			// The aggregate keeps only its group keys and its own outputs:
			// an upstream aggregate alias survives only by being consumed as
			// some aggregate's input.
			ins := map[string]bool{}
			for _, ag := range st.aggSpecs() {
				ins[ag.In] = true
			}
			//pebblevet:ignore determinism -- the body only ANDs into ok; the result is iteration-order independent
			for name := range alias[st.In] {
				if !ins[name] {
					ok = false
				}
			}
			out := map[string]bool{}
			for _, ag := range st.aggSpecs() {
				out[ag.Out] = true
			}
			alias[i] = out
		case StepFlatten:
			if alias[st.In][st.FlattenCol] {
				ok = false
			}
			alias[i] = alias[st.In]
		case StepUnion, StepJoin:
			out := map[string]bool{}
			for name := range alias[st.In] {
				out[name] = true
			}
			for name := range alias[st.In2] {
				out[name] = true
			}
			alias[i] = out
		default: // filter, distinct, orderby, limit: schema unchanged
			alias[i] = alias[st.In]
		}
	}
	return ok
}

// Clone returns a deep copy of the spec (values are immutable and shared).
func (s *Spec) Clone() *Spec {
	out := &Spec{Seed: s.Seed, Sink: s.Sink, ShuffleJoin: s.ShuffleJoin}
	out.Rows = append([]nested.Value(nil), s.Rows...)
	out.Aux = append([]nested.Value(nil), s.Aux...)
	out.Steps = make([]Step, len(s.Steps))
	for i, st := range s.Steps {
		cp := st
		if st.Pred != nil {
			p := *st.Pred
			cp.Pred = &p
		}
		cp.Fields = append([]FieldSpec(nil), st.Fields...)
		cp.GroupBys = append([]string(nil), st.GroupBys...)
		cp.Aggs = append([]AggStep(nil), st.Aggs...)
		out.Steps[i] = cp
	}
	if s.Pattern != nil {
		p := *s.Pattern
		out.Pattern = &p
	}
	return out
}

// DropStep returns a copy of the spec with non-source step i removed:
// consumers of i are rewired to i's primary input, the sink follows the same
// rule, and steps no longer reachable from the sink (for example an orphaned
// join side) are pruned. Returns ok == false when i cannot be dropped.
func (s *Spec) DropStep(i int) (*Spec, bool) {
	if i < 0 || i >= len(s.Steps) || s.Steps[i].Op == StepSource {
		return nil, false
	}
	c := s.Clone()
	redirect := c.Steps[i].In
	for j := range c.Steps {
		if c.Steps[j].In == i {
			c.Steps[j].In = redirect
		}
		if c.Steps[j].In2 == i {
			c.Steps[j].In2 = redirect
		}
	}
	if c.Sink == i {
		c.Sink = redirect
	}
	// Keep only steps reachable from the sink, preserving order.
	reach := make([]bool, len(c.Steps))
	var mark func(int)
	mark = func(idx int) {
		if idx < 0 || idx >= len(c.Steps) || reach[idx] {
			return
		}
		reach[idx] = true
		mark(c.Steps[idx].In)
		mark(c.Steps[idx].In2)
	}
	mark(c.Sink)
	reach[i] = false
	remap := make([]int, len(c.Steps))
	var kept []Step
	for j, st := range c.Steps {
		if !reach[j] {
			remap[j] = -1
			continue
		}
		remap[j] = len(kept)
		kept = append(kept, st)
	}
	for j := range kept {
		if kept[j].In >= 0 {
			kept[j].In = remap[kept[j].In]
		}
		if kept[j].In2 >= 0 {
			kept[j].In2 = remap[kept[j].In2]
		}
	}
	c.Steps = kept
	c.Sink = remap[c.Sink]
	if c.Sink < 0 || len(c.Steps) == 0 {
		return nil, false
	}
	// Drop the aux rows when the aux source is gone.
	hasAux := false
	for _, st := range c.Steps {
		if st.Op == StepSource && st.Dataset == DatasetAux {
			hasAux = true
		}
	}
	if !hasAux {
		c.Aux = nil
	}
	return c, true
}

// specJSON is the serialized form: rows are embedded as raw JSON values
// (nested.Value marshals naturally; parsing restores items, bags, and
// constants).
type specJSON struct {
	Seed        int64             `json:"seed"`
	Rows        []json.RawMessage `json:"rows"`
	Aux         []json.RawMessage `json:"aux,omitempty"`
	Steps       []Step            `json:"steps"`
	Sink        int               `json:"sink"`
	Pattern     *PatternSpec      `json:"pattern,omitempty"`
	ShuffleJoin bool              `json:"shuffleJoin,omitempty"`
}

// MarshalJSON serializes the spec including its datasets.
func (s *Spec) MarshalJSON() ([]byte, error) {
	enc := func(vals []nested.Value) ([]json.RawMessage, error) {
		out := make([]json.RawMessage, 0, len(vals))
		for _, v := range vals {
			b, err := v.MarshalJSON()
			if err != nil {
				return nil, err
			}
			out = append(out, b)
		}
		return out, nil
	}
	rows, err := enc(s.Rows)
	if err != nil {
		return nil, err
	}
	aux, err := enc(s.Aux)
	if err != nil {
		return nil, err
	}
	return json.Marshal(specJSON{
		Seed: s.Seed, Rows: rows, Aux: aux,
		Steps: s.Steps, Sink: s.Sink, Pattern: s.Pattern, ShuffleJoin: s.ShuffleJoin,
	})
}

// UnmarshalJSON restores a spec serialized by MarshalJSON.
func (s *Spec) UnmarshalJSON(data []byte) error {
	var sj specJSON
	if err := json.Unmarshal(data, &sj); err != nil {
		return err
	}
	dec := func(raw []json.RawMessage) ([]nested.Value, error) {
		out := make([]nested.Value, 0, len(raw))
		for _, r := range raw {
			v, err := nested.ParseJSON(r)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	}
	rows, err := dec(sj.Rows)
	if err != nil {
		return err
	}
	aux, err := dec(sj.Aux)
	if err != nil {
		return err
	}
	*s = Spec{Seed: sj.Seed, Rows: rows, Aux: aux, Steps: sj.Steps, Sink: sj.Sink,
		Pattern: sj.Pattern, ShuffleJoin: sj.ShuffleJoin}
	return nil
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
