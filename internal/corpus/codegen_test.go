package corpus

import (
	"go/format"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// Generated reproducers are pasted into regression tests verbatim: they must
// parse, already be gofmt-clean, and survive go vet against the real engine
// API (a template drift that emits stale builder calls shows up here, not
// when a soak failure finally needs reproducing).
func TestGoSnippetGofmtClean(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		src := GoSnippet(Generate(seed))
		if _, err := parser.ParseFile(token.NewFileSet(), "repro.go", src, 0); err != nil {
			t.Fatalf("seed %d: generated snippet does not parse: %v", seed, err)
		}
		fmtd, err := format.Source([]byte(src))
		if err != nil {
			t.Fatalf("seed %d: format: %v", seed, err)
		}
		if string(fmtd) != src {
			t.Errorf("seed %d: generated snippet is not gofmt-clean", seed)
		}
	}
}

func TestGoSnippetPassesGoVet(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go binary not available")
	}
	// The snippet imports pebble/internal/...; vet can only resolve those
	// from a package directory inside this module, so build one next to the
	// test and remove it afterwards.
	dir, err := os.MkdirTemp(".", "codegen_vet_")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)

	for _, seed := range []int64{1, 2, 7} {
		src := GoSnippet(Generate(seed))
		if err := os.WriteFile(filepath.Join(dir, "repro.go"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command(goBin, "vet", "./"+dir)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("seed %d: go vet failed: %v\n%s\n--- generated source ---\n%s", seed, err, out, src)
		}
	}
}
