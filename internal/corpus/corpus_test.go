package corpus

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"pebble/internal/engine"
)

// Every generated spec must build into a valid pipeline and run cleanly.
func TestGeneratedSpecsBuildAndRun(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		s := Generate(seed)
		p, err := s.Build()
		if err != nil {
			t.Fatalf("seed %d: build: %v", seed, err)
		}
		res, err := engine.Run(p, s.Inputs(4), engine.Options{Partitions: 4})
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		_ = res
		// The pattern must compile too.
		s.BuildPattern()
	}
}

// Generation is a pure function of the seed.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a, b := Generate(seed), Generate(seed)
		ja, err := json.Marshal(a)
		if err != nil {
			t.Fatal(err)
		}
		jb, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		if string(ja) != string(jb) {
			t.Fatalf("seed %d: non-deterministic generation", seed)
		}
	}
}

// The corpus covers every operator kind within a modest seed range.
func TestGeneratorCoversAllOperators(t *testing.T) {
	seen := map[string]bool{}
	for seed := int64(0); seed < 400; seed++ {
		for _, st := range Generate(seed).Steps {
			seen[st.Op] = true
		}
	}
	for _, op := range []string{
		StepSource, StepFilter, StepSelect, StepFlatten, StepAggregate,
		StepUnion, StepJoin, StepDistinct, StepOrderBy, StepLimit,
	} {
		if !seen[op] {
			t.Errorf("operator %q never generated in 400 seeds", op)
		}
	}
}

// JSON round-trip: a spec survives serialize → parse → serialize.
func TestSpecJSONRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		s := Generate(seed)
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("seed %d: marshal: %v", seed, err)
		}
		var back Spec
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("seed %d: unmarshal: %v", seed, err)
		}
		again, err := json.Marshal(&back)
		if err != nil {
			t.Fatalf("seed %d: re-marshal: %v", seed, err)
		}
		if string(data) != string(again) {
			t.Fatalf("seed %d: round-trip mismatch", seed)
		}
		// The rebuilt spec must produce identical results.
		want := mustRun(t, s)
		got := mustRun(t, &back)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("seed %d: rebuilt spec produced different output", seed)
		}
	}
}

func mustRun(t *testing.T, s *Spec) []string {
	t.Helper()
	p, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(p, s.Inputs(4), engine.Options{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, 0, len(res.Output.Values()))
	for _, v := range res.Output.Values() {
		out = append(out, v.String())
	}
	return out
}

// Dropping any droppable step must leave a buildable, runnable spec.
func TestDropStepKeepsSpecsWellFormed(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		s := Generate(seed)
		for i := range s.Steps {
			c, ok := s.DropStep(i)
			if !ok {
				continue
			}
			p, err := c.Build()
			if err != nil {
				t.Fatalf("seed %d drop %d: build: %v", seed, i, err)
			}
			if _, err := engine.Run(p, c.Inputs(4), engine.Options{Partitions: 4}); err != nil {
				t.Fatalf("seed %d drop %d: run: %v", seed, i, err)
			}
		}
	}
}

// The generated snippet mentions every operator of the spec and stays
// syntactically plausible (balanced builder calls, package clause).
func TestGoSnippetMentionsAllSteps(t *testing.T) {
	s := Generate(7)
	snip := GoSnippet(s)
	if !strings.HasPrefix(snip, "// Reproducer generated from corpus seed 7") {
		t.Fatalf("missing header: %q", snip[:60])
	}
	if !strings.Contains(snip, "package main") {
		t.Fatal("missing package clause")
	}
	for i := range s.Steps {
		if !strings.Contains(snip, fmt.Sprintf("op%d :=", i)) {
			t.Fatalf("snippet missing op%d", i)
		}
	}
}
