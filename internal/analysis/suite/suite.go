// Package suite names the project's full analyzer set in one place, shared
// by cmd/pebblevet and by tests that want to run the whole gate in-process.
package suite

import (
	"pebble/internal/analysis"
	"pebble/internal/analysis/passes/capturesound"
	"pebble/internal/analysis/passes/codecerr"
	"pebble/internal/analysis/passes/determinism"
	"pebble/internal/analysis/passes/lockcheck"
)

// Analyzers returns the checks `make check` and CI enforce on every push.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		capturesound.Analyzer,
		lockcheck.Analyzer,
		codecerr.Analyzer,
	}
}
