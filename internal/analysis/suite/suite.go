// Package suite names the project's full analyzer set in one place, shared
// by cmd/pebblevet and by tests that want to run the whole gate in-process.
package suite

import (
	"pebble/internal/analysis"
	"pebble/internal/analysis/passes/capturesound"
	"pebble/internal/analysis/passes/codecerr"
	"pebble/internal/analysis/passes/determinism"
	"pebble/internal/analysis/passes/hotalloc"
	"pebble/internal/analysis/passes/lockcheck"
	"pebble/internal/analysis/passes/poolescape"
	"pebble/internal/analysis/passes/rangecapture"
)

// Analyzers returns the checks `make check` and CI enforce on every push:
// the seven analyzers plus the driver-level stale-ignore check, which
// reports //pebblevet:ignore directives that no longer suppress anything.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		capturesound.Analyzer,
		lockcheck.Analyzer,
		codecerr.Analyzer,
		poolescape.Analyzer,
		rangecapture.Analyzer,
		hotalloc.Analyzer,
		analysis.StaleIgnore,
	}
}
