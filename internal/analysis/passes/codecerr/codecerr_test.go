package codecerr_test

import (
	"testing"

	"pebble/internal/analysis/analysistest"
	"pebble/internal/analysis/passes/codecerr"
)

func TestCodecErr(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), codecerr.Analyzer, "codecerr")
}
