// Stub of pebble/internal/backtrace for the codecerr fixtures: only the
// sidecar codec surface, so fixture files can exercise the watched import
// path without depending on the real package tree.
package backtrace

import "io"

type Tracer struct{}

func NewTracer() *Tracer { return &Tracer{} }

func (t *Tracer) WriteIndexes(w io.Writer) (int64, error) { return 0, nil }

func (t *Tracer) LoadIndexes(data []byte) error { return nil }

func (t *Tracer) BuildIndexes() {}
