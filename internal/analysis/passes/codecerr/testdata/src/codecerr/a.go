// Fixture for the codecerr analyzer: discarded encoding/binary errors.
package codecerr

import (
	"bytes"
	"encoding/binary"
)

func bad(buf *bytes.Buffer, v uint32) {
	binary.Write(buf, binary.LittleEndian, v) // want `error returned by binary.Write is discarded`
}

func badBlank(r *bytes.Reader, v *uint32) {
	_ = binary.Read(r, binary.LittleEndian, v) // want `error returned by binary.Read is assigned to _`
}

func badDefer(buf *bytes.Buffer, v uint32) {
	defer binary.Write(buf, binary.LittleEndian, v) // want `error returned by binary.Write is discarded by defer`
}

func good(buf *bytes.Buffer, v uint32) error {
	return binary.Write(buf, binary.LittleEndian, v)
}

func checked(buf *bytes.Buffer, v uint32) {
	if err := binary.Write(buf, binary.LittleEndian, v); err != nil {
		panic(err)
	}
}

// fixedWidth uses the error-free fixed-width API: not flagged.
func fixedWidth(b []byte, v uint32) {
	binary.LittleEndian.PutUint32(b, v)
}

// The varint paths the columnar v2 codec leans on: a dropped ReadUvarint
// error turns a truncated stream into silent zeros.
func badVarint(r *bytes.Reader) {
	binary.ReadUvarint(r) // want `error returned by binary.ReadUvarint is discarded`
}

func badVarintBlank(r *bytes.Reader) uint64 {
	_, _ = binary.ReadUvarint(r) // want `error returned by binary.ReadUvarint is assigned to _`
	return 0
}

func goodVarint(r *bytes.Reader) (uint64, error) {
	return binary.ReadUvarint(r)
}

// AppendUvarint is the error-free append API: not flagged.
func appendVarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func ignored(buf *bytes.Buffer, v uint32) {
	//pebblevet:ignore codecerr -- fixture: deliberate suppression example
	binary.Write(buf, binary.LittleEndian, v)
}
