// Fixture for the codecerr analyzer: discarded backtrace sidecar errors. A
// dropped WriteIndexes error ships a truncated index sidecar; a dropped
// LoadIndexes error leaves the caller believing persisted indexes were
// installed when they were rejected.
package codecerr

import (
	"bytes"

	"pebble/internal/backtrace"
)

func badWriteIndexes(t *backtrace.Tracer, buf *bytes.Buffer) {
	t.WriteIndexes(buf) // want `error returned by backtrace.WriteIndexes is discarded`
}

func badLoadIndexes(t *backtrace.Tracer, data []byte) {
	t.LoadIndexes(data) // want `error returned by backtrace.LoadIndexes is discarded`
}

func badLoadIndexesBlank(t *backtrace.Tracer, data []byte) {
	_ = t.LoadIndexes(data) // want `error returned by backtrace.LoadIndexes is assigned to _`
}

func badWriteIndexesDefer(t *backtrace.Tracer, buf *bytes.Buffer) {
	defer t.WriteIndexes(buf) // want `error returned by backtrace.WriteIndexes is discarded by defer`
}

func goodLoadIndexes(t *backtrace.Tracer, data []byte) error {
	return t.LoadIndexes(data)
}

func checkedWriteIndexes(t *backtrace.Tracer, buf *bytes.Buffer) {
	if _, err := t.WriteIndexes(buf); err != nil {
		panic(err)
	}
}

// BuildIndexes returns nothing: not flagged.
func buildOnly(t *backtrace.Tracer) {
	t.BuildIndexes()
}

// A rejected-sidecar fallback that deliberately ignores the error must say
// so explicitly.
func ignoredLoad(t *backtrace.Tracer, data []byte) {
	//pebblevet:ignore codecerr -- fixture: rebuild fallback tolerates a rejected sidecar
	t.LoadIndexes(data)
}
