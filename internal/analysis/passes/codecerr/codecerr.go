// Package codecerr flags discarded error results from the provenance codec,
// the backtrace sidecar codec, and encoding/binary read/write calls. A
// dropped error from Run.WriteTo or ReadRun silently truncates or corrupts
// serialized provenance — the repro and benchmark artifacts later PRs diff
// against — a dropped Tracer.WriteIndexes/LoadIndexes error ships or
// installs a broken index sidecar, and a dropped binary.Read/Write error
// yields garbage values that look like data. Callers must check, return, or
// explicitly annotate.
package codecerr

import (
	"go/ast"
	"go/types"
	"strings"

	"pebble/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "codecerr",
	Doc: `flag discarded errors from the provenance and sidecar codecs and encoding/binary

Errors returned by functions and methods of the listed packages (default:
encoding/binary, pebble/internal/provenance, and pebble/internal/backtrace)
must not be dropped via a bare call statement, assignment to blank
identifiers only, or defer.`,
	Run: run,
}

// pkgs lists the import paths whose error results must be consumed.
var pkgs string

func init() {
	Analyzer.Flags.StringVar(&pkgs, "pkgs", "encoding/binary,pebble/internal/provenance,pebble/internal/backtrace", "comma-separated packages whose returned errors must be checked")
}

func run(pass *analysis.Pass) (interface{}, error) {
	watched := make(map[string]bool)
	for _, p := range strings.Split(pkgs, ",") {
		if p = strings.TrimSpace(p); p != "" {
			watched[p] = true
		}
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				check(pass, watched, st.X, "discarded")
			case *ast.DeferStmt:
				check(pass, watched, st.Call, "discarded by defer")
			case *ast.GoStmt:
				check(pass, watched, st.Call, "discarded by go statement")
			case *ast.AssignStmt:
				if len(st.Rhs) == 1 && allBlank(st.Lhs) {
					check(pass, watched, st.Rhs[0], "assigned to _")
				}
			}
			return true
		})
	}
	return nil, nil
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

func check(pass *analysis.Pass, watched map[string]bool, e ast.Expr, how string) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || !watched[fn.Pkg().Path()] {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !returnsError(sig) {
		return
	}
	pass.Reportf(call.Pos(), "error returned by %s.%s is %s; a dropped codec error silently truncates serialized provenance — handle it or annotate //pebblevet:ignore codecerr -- reason", fn.Pkg().Name(), fn.Name(), how)
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok {
			if named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
				return true
			}
		}
	}
	return false
}
