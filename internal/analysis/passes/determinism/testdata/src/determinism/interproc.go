// One-hop interprocedural cases: the loop body parks the helper's result in
// a per-iteration local, but the helper itself leaks iteration order by
// writing an argument-derived value into a slice parameter.
package determinism

import "sort"

// badHelperWrite: record stores v at a computed slot of the shared slice;
// colliding slots resolve by call order, i.e. by map iteration order.
func badHelperWrite(m map[int]int, dst []int) {
	for k, v := range m { // want `map iteration order is nondeterministic`
		ok := record(dst, k, v)
		if ok {
			continue
		}
	}
}

func record(dst []int, k, v int) bool {
	h := k % len(dst)
	dst[h] = v
	return true
}

// goodHelperPure: the helper only computes; the collect-then-sort idiom
// still applies, so the range is clean.
func goodHelperPure(m map[int]int) []int {
	var ks []int
	for k := range m {
		kk := double(k)
		ks = append(ks, kk)
	}
	sort.Ints(ks)
	return ks
}

func double(v int) int { return v * 2 }

// goodHelperLocalWrite: the helper writes only into storage it allocated
// itself — nothing shared across iterations, so order cannot leak.
func goodHelperLocalWrite(m map[int]int) int {
	total := 0
	for _, v := range m {
		s := scratchSum(v)
		total += s
	}
	return total
}

func scratchSum(v int) int {
	buf := make([]int, 4)
	buf[0] = v
	return buf[0]
}
