// Fixture for the determinism analyzer: flagged map ranges, the clean
// collect-then-sort idiom, order-insensitive bodies, and clock/rand use.
package determinism

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

// badConcat folds iteration order into a string: flagged.
func badConcat(m map[string]int) string {
	s := ""
	for k := range m { // want `map iteration order is nondeterministic`
		s += k
	}
	return s
}

// badCollect gathers keys but never sorts them, so callers see map order.
func badCollect(m map[string]int) []string {
	var keys []string
	for k := range m { // want `collected here but never sorted`
		keys = append(keys, k)
	}
	return keys
}

// goodSorted is the repo's sorted-key idiom: allowed.
func goodSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// goodSortFunc sorts through a slices-style helper named sortStrings.
func goodSortFunc(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sortStrings(keys)
	return keys
}

func sortStrings(s []string) { sort.Strings(s) }

// goodSum accumulates integers: order-insensitive, allowed.
func goodSum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// goodInvert writes into another map: order-insensitive, allowed.
func goodInvert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// goodConditional collects behind a filter, then sorts: allowed.
func goodConditional(m map[string]int) []string {
	var keys []string
	for k, v := range m {
		if v > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// goodPerKeySort sorts a per-iteration local inside the body: allowed.
func goodPerKeySort(m map[string][]int) map[string][]int {
	out := make(map[string][]int, len(m))
	for k, vs := range m {
		c := append([]int(nil), vs...)
		sort.Ints(c)
		out[k] = c
	}
	return out
}

// badFloatSum: float addition does not commute under rounding.
func badFloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `map iteration order is nondeterministic`
		sum += v
	}
	return sum
}

// ignored demonstrates the audited escape hatch.
func ignored(m map[string]int) string {
	s := ""
	//pebblevet:ignore determinism -- fixture: deliberate suppression example
	for k := range m {
		s += k
	}
	return s
}

// column is a stand-in for a decoded batch column (internal/engine/batch.go).
type column struct {
	valid []uint64
	vals  []int64
}

// goodBatchRecycle mirrors the engine's putBatch shape: draining a per-batch
// column cache back into a sync.Pool. delete commutes and pool insertion
// order is unobservable (Get may return any pooled value): allowed.
func goodBatchRecycle(cache map[string]*column, pool *sync.Pool) {
	for k, c := range cache {
		delete(cache, k)
		pool.Put(c)
	}
}

// badBatchDrain drains the same cache but appends the columns to a slice the
// caller will iterate: cache order leaks into downstream work.
func badBatchDrain(cache map[string]*column, out []*column) []*column {
	for k, c := range cache { // want `collected here but never sorted`
		delete(cache, k)
		out = append(out, c)
	}
	return out
}

// goodValidityCount ranges a cached-column map but only folds validity
// bitmaps into an integer population count: order-insensitive, allowed.
func goodValidityCount(cache map[string]*column) int {
	n := 0
	for _, c := range cache {
		for _, w := range c.valid {
			for ; w != 0; w &= w - 1 {
				n++
			}
		}
	}
	return n
}

// badFirstColumn publishes whichever column the map yields first.
func badFirstColumn(cache map[string]*column) *column {
	for _, c := range cache { // want `map iteration order is nondeterministic`
		return c
	}
	return nil
}

// badTime leaks the wall clock into an "identifier".
func badTime() int64 {
	return time.Now().UnixNano() // want `time.Now in an identifier/provenance-producing package`
}

// badRand draws from the shared global source.
func badRand() int {
	return rand.Intn(10) // want `global math/rand.Intn`
}

// goodRand threads an explicitly seeded generator.
func goodRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}
