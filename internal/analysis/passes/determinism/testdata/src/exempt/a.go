// Package exempt models a service-layer package: it sits under the idpkgs
// prefix for this test run but is listed in -exemptpkgs, so its wall-clock
// and global-rand use must produce no diagnostics. Map-iteration checks are
// NOT scoped by the exemption and still apply.
package exempt

import (
	"math/rand"
	"time"
)

// Stamp is the legitimate service-layer shape: wall-clock timestamps on job
// metadata that never reach provenance bytes.
func Stamp() time.Time {
	return time.Now() // exempt: no diagnostic expected
}

// Jitter draws from the global source; allowed here because retry jitter is
// not identifier material.
func Jitter() int {
	return rand.Intn(10) // exempt: no diagnostic expected
}

// Leak shows the exemption is surgical: map iteration order is still checked
// everywhere, including exempt packages.
func Leak(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map keys/values are collected here but never sorted in Leak`
		keys = append(keys, k)
	}
	return keys
}
