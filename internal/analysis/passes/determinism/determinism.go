// Package determinism flags sources of run-to-run nondeterminism in code
// that must be byte-stable across executions and worker counts: map
// iteration whose order can leak into results, identifiers, provenance, or
// rendered reports, and wall-clock / global-randomness calls inside the
// packages that produce identifiers and provenance.
//
// Map ranges are allowed when their bodies are provably order-insensitive —
// writes into another map, integer accumulation, delete — or when they only
// collect keys/values into slices that the enclosing function subsequently
// sorts (the repo's sorted-key idiom). Anything else needs an explicit
// `//pebblevet:ignore determinism -- reason` directive.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"pebble/internal/analysis"
	"pebble/internal/analysis/dataflow"
)

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: `flag nondeterministic map iteration and time/rand use in deterministic paths

Results, identifiers, and captured provenance must be byte-identical across
runs and Options.Workers settings (see internal/engine/schedule.go). This
analyzer flags range-over-map statements unless the body is order-insensitive
or feeds the collect-then-sort idiom, and flags time.Now and global math/rand
functions inside the identifier/provenance-producing packages.`,
	Run: run,
}

// idPkgs scopes the time.Now / global-rand checks: import paths (plus their
// subpackages) where wall-clock time or an unseeded global generator could
// leak into identifiers, provenance, or generated datasets.
var idPkgs string

// exemptPkgs subtracts from idPkgs: import paths (plus their subpackages)
// where wall-clock use is an explicit part of the contract and never reaches
// provenance bytes. The service layer is the canonical case — pebbled stamps
// job Created/Started/Finished times and Retry-After hints, and the SDK
// polls on wall-clock intervals, while the deterministic capture path those
// jobs run stays inside the idPkgs scope. Listing them here keeps the
// exemption decision in one reviewable place even if idpkgs is later
// broadened to a prefix that would cover them.
var exemptPkgs string

func init() {
	Analyzer.Flags.StringVar(&idPkgs, "idpkgs", strings.Join([]string{
		"pebble/internal/engine",
		"pebble/internal/provenance",
		"pebble/internal/backtrace",
		"pebble/internal/lineage",
		"pebble/internal/nested",
		"pebble/internal/path",
		"pebble/internal/corpus",
		"pebble/internal/workload",
		"pebble/internal/usage",
	}, ","), "comma-separated import paths (with subpackages) subject to the time.Now/math.rand checks")
	Analyzer.Flags.StringVar(&exemptPkgs, "exemptpkgs", strings.Join([]string{
		"pebble/internal/server",
		"pebble/pkg/sdk",
	}, ","), "comma-separated import paths (with subpackages) exempt from the time.Now/math.rand checks even when matched by -idpkgs: packages whose wall-clock use is part of their contract (job timestamps, retry hints) and never enters provenance")
}

func run(pass *analysis.Pass) (interface{}, error) {
	checkClock := inScope(pass.Pkg.Path())
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.RangeStmt:
					checkMapRange(pass, fd, n)
				case *ast.CallExpr:
					if checkClock {
						checkClockAndRand(pass, n)
					}
				}
				return true
			})
		}
	}
	return nil, nil
}

func inScope(pkgPath string) bool {
	return !matchesList(pkgPath, exemptPkgs) && matchesList(pkgPath, idPkgs)
}

// matchesList reports whether pkgPath equals an entry of the comma-separated
// list or lives under one as a subpackage.
func matchesList(pkgPath, list string) bool {
	for _, entry := range strings.Split(list, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		if pkgPath == entry || strings.HasPrefix(pkgPath, entry+"/") {
			return true
		}
	}
	return false
}

// checkMapRange reports rs unless its body is order-insensitive or collects
// into slices that fd later sorts.
func checkMapRange(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if rs.Key == nil && rs.Value == nil {
		// `for range m` cannot observe iteration order through its variables;
		// an order-insensitive repetition count.
		return
	}
	collected := make(map[types.Object]bool)
	if !orderInsensitive(pass, rs.Body.List, collected) {
		pass.Reportf(rs.Pos(), "map iteration order is nondeterministic here; collect the keys and sort them first (or annotate //pebblevet:ignore determinism -- reason)")
		return
	}
	if len(collected) == 0 {
		return
	}
	if !sortedLater(pass, fd.Body, collected) {
		pass.Reportf(rs.Pos(), "map keys/values are collected here but never sorted in %s; sort them before use to keep iteration-order effects out of the output", fd.Name.Name)
	}
}

// orderInsensitive reports whether executing stmts in any iteration order
// yields identical state, tracking slice variables that merely accumulate
// (they are fine if sorted afterwards — the caller checks that).
func orderInsensitive(pass *analysis.Pass, stmts []ast.Stmt, collected map[types.Object]bool) bool {
	for _, st := range stmts {
		switch st := st.(type) {
		case *ast.AssignStmt:
			if !orderInsensitiveAssign(pass, st, collected) {
				return false
			}
		case *ast.IncDecStmt:
			if !isInteger(pass, st.X) {
				return false
			}
		case *ast.ExprStmt:
			// delete(m, k) commutes across iterations (each key visited once),
			// sorting a slice in the body is itself the determinism fix, and
			// sync.Pool.Put inserts into an explicitly unordered free list —
			// the batch-recycle shape `for k, c := range cache { delete(cache, k);
			// pool.Put(c) }` leaks no order anywhere.
			if call, ok := st.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" && pass.TypesInfo.Uses[id] == types.Universe.Lookup("delete") {
					continue
				}
				if isSortCall(pass, call.Fun) {
					continue
				}
				if isPoolPut(pass, call.Fun) {
					continue
				}
			}
			return false
		case *ast.IfStmt:
			if st.Init != nil {
				init, ok := st.Init.(*ast.AssignStmt)
				if !ok || init.Tok != token.DEFINE {
					return false // only per-iteration locals in if-init
				}
			}
			if !orderInsensitive(pass, st.Body.List, collected) {
				return false
			}
			if st.Else != nil {
				var elseStmts []ast.Stmt
				switch e := st.Else.(type) {
				case *ast.BlockStmt:
					elseStmts = e.List
				default:
					elseStmts = []ast.Stmt{e}
				}
				if !orderInsensitive(pass, elseStmts, collected) {
					return false
				}
			}
		case *ast.BlockStmt:
			if !orderInsensitive(pass, st.List, collected) {
				return false
			}
		case *ast.RangeStmt, *ast.ForStmt:
			var body *ast.BlockStmt
			if r, ok := st.(*ast.RangeStmt); ok {
				body = r.Body
			} else {
				body = st.(*ast.ForStmt).Body
			}
			if !orderInsensitive(pass, body.List, collected) {
				return false
			}
		case *ast.DeclStmt, *ast.EmptyStmt:
			// Local declarations are per-iteration state.
		case *ast.BranchStmt:
			if st.Tok != token.CONTINUE {
				return false // break/goto make effects order-dependent
			}
		default:
			return false
		}
	}
	return true
}

// orderInsensitiveAssign accepts the three assignment shapes that commute
// across iteration orders: slice accumulation v = append(v, ...), writes
// into a map (each range key distinct), and integer accumulation.
func orderInsensitiveAssign(pass *analysis.Pass, st *ast.AssignStmt, collected map[types.Object]bool) bool {
	if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
		// Per-iteration locals like k, v := ... are fine only for :=.
		if st.Tok == token.DEFINE {
			return true
		}
		return false
	}
	lhs, rhs := st.Lhs[0], st.Rhs[0]
	switch st.Tok {
	case token.ASSIGN, token.DEFINE:
		if id, ok := lhs.(*ast.Ident); ok {
			if call, ok := rhs.(*ast.CallExpr); ok {
				if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "append" && pass.TypesInfo.Uses[fn] == types.Universe.Lookup("append") {
					if len(call.Args) > 0 {
						if base, ok := call.Args[0].(*ast.Ident); ok && base.Name == id.Name {
							if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
								collected[obj] = true
								return true
							}
						}
					}
				}
				// One interprocedural hop: a local helper called from the
				// body can leak iteration order through its own writes even
				// though the result lands in a per-iteration local.
				if fd := localCallee(pass, call); fd != nil && helperOrderSensitive(pass, fd) {
					return false
				}
			}
			// Defining a fresh per-iteration local is harmless.
			return st.Tok == token.DEFINE
		}
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			if t := pass.TypesInfo.TypeOf(ix.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					return true
				}
			}
		}
		return false
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Integer accumulation commutes; float addition does not (rounding).
		return isInteger(pass, lhs)
	}
	return false
}

func isInteger(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// sortedLater reports whether any collected variable is passed to a sorting
// call (package sort or slices, or a helper whose name starts with "sort")
// somewhere in the enclosing function body.
func sortedLater(pass *analysis.Pass, body *ast.BlockStmt, collected map[types.Object]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSortCall(pass, call.Fun) {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil && collected[obj] {
						found = true
					}
				}
				return !found
			})
		}
		return !found
	})
	return found
}

func isSortCall(pass *analysis.Pass, fun ast.Expr) bool {
	switch fun := fun.(type) {
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.Uses[x].(*types.PkgName); ok {
				p := pn.Imported().Path()
				return p == "sort" || p == "slices"
			}
		}
		return strings.HasPrefix(strings.ToLower(fun.Sel.Name), "sort")
	case *ast.Ident:
		return strings.HasPrefix(strings.ToLower(fun.Name), "sort")
	}
	return false
}

// localCallee resolves a call to its *ast.FuncDecl when the callee is a
// plain function declared in this package's files; nil otherwise (methods,
// builtins, imported functions, function values).
func localCallee(pass *analysis.Pass, call *ast.CallExpr) *ast.FuncDecl {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && pass.TypesInfo.Defs[fd.Name] == types.Object(fn) {
				return fd
			}
		}
	}
	return nil
}

// helperOrderSensitive is the one-hop interprocedural check (DESIGN.md §11):
// a helper invoked once per map iteration makes the order observable when it
// stores an argument-derived value by index into a slice parameter — slices
// are shared across iterations, and colliding indices resolve by call order.
// The dataflow engine's taint lattice tracks argument influence through the
// helper's body; one hop only, helpers of helpers are not followed.
func helperOrderSensitive(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Body == nil || fd.Type.Params == nil {
		return false
	}
	params := make(map[*types.Var]bool)
	sliceParams := make(map[*types.Var]bool)
	for _, f := range fd.Type.Params.List {
		for _, name := range f.Names {
			v, ok := pass.TypesInfo.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			params[v] = true
			if _, isSlice := v.Type().Underlying().(*types.Slice); isSlice {
				sliceParams[v] = true
			}
		}
	}
	if len(sliceParams) == 0 {
		return false
	}
	r := dataflow.NewReaching(fd, pass.TypesInfo)
	taint := dataflow.NewTaint(r, dataflow.TaintConfig{
		Source: func(e ast.Expr) bool {
			id, ok := e.(*ast.Ident)
			if !ok {
				return false
			}
			v, ok := pass.TypesInfo.Uses[id].(*types.Var)
			return ok && params[v]
		},
	})
	for _, n := range r.Graph.Nodes {
		if n.Stmt == nil {
			continue
		}
		as, ok := n.Stmt.(*ast.AssignStmt)
		if !ok {
			continue
		}
		for i, lhs := range as.Lhs {
			ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
			if !ok {
				continue
			}
			base, ok := ast.Unparen(ix.X).(*ast.Ident)
			if !ok {
				continue
			}
			v, ok := pass.TypesInfo.Uses[base].(*types.Var)
			if !ok || !sliceParams[v] {
				continue
			}
			if taint.ExprTaintedAt(ix.Index, n) || (i < len(as.Rhs) && taint.ExprTaintedAt(as.Rhs[i], n)) {
				return true
			}
		}
	}
	return false
}

// isPoolPut reports whether fun is the Put method of sync.Pool (or a type
// embedding it). Pools are explicitly unordered — Get may return any pooled
// value — so the insertion order of a map-range recycle loop is unobservable.
func isPoolPut(pass *analysis.Pass, fun ast.Expr) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Put" {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Pool" && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync"
}

// checkClockAndRand flags time.Now and the global math/rand convenience
// functions (whose shared source makes output depend on call interleaving).
func checkClockAndRand(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := pass.TypesInfo.Uses[x].(*types.PkgName)
	if !ok {
		return
	}
	switch pn.Imported().Path() {
	case "time":
		if sel.Sel.Name == "Now" {
			pass.Reportf(call.Pos(), "time.Now in an identifier/provenance-producing package makes output depend on the wall clock; thread a timestamp in explicitly (or annotate //pebblevet:ignore determinism -- reason)")
		}
	case "math/rand", "math/rand/v2":
		switch sel.Sel.Name {
		case "New", "NewSource", "NewZipf":
			return // constructing an explicitly seeded generator is the fix
		}
		if _, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func); isFunc {
			pass.Reportf(call.Pos(), "global math/rand.%s draws from the shared, seed-racy source; use an explicitly seeded *rand.Rand", sel.Sel.Name)
		}
	}
}
