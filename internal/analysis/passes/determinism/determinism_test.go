package determinism_test

import (
	"testing"

	"pebble/internal/analysis/analysistest"
	"pebble/internal/analysis/passes/determinism"
)

func TestDeterminism(t *testing.T) {
	// The clock/rand checks are scoped to the repo's identifier-producing
	// packages; point them at the fixture for the test.
	def := determinism.Analyzer.Flags.Lookup("idpkgs").DefValue
	if err := determinism.Analyzer.Flags.Set("idpkgs", "determinism"); err != nil {
		t.Fatal(err)
	}
	defer determinism.Analyzer.Flags.Set("idpkgs", def)
	analysistest.Run(t, analysistest.TestData(), determinism.Analyzer, "determinism")
}

// TestExemptPkgs pins the -exemptpkgs carve-out: a package matched by
// -idpkgs but listed in -exemptpkgs gets no clock/rand diagnostics (the
// service layer's job timestamps and retry jitter are contractual), while
// the map-iteration checks still apply there unchanged.
func TestExemptPkgs(t *testing.T) {
	idDef := determinism.Analyzer.Flags.Lookup("idpkgs").DefValue
	exDef := determinism.Analyzer.Flags.Lookup("exemptpkgs").DefValue
	if err := determinism.Analyzer.Flags.Set("idpkgs", "determinism,exempt"); err != nil {
		t.Fatal(err)
	}
	if err := determinism.Analyzer.Flags.Set("exemptpkgs", "exempt"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		determinism.Analyzer.Flags.Set("idpkgs", idDef)
		determinism.Analyzer.Flags.Set("exemptpkgs", exDef)
	}()
	analysistest.Run(t, analysistest.TestData(), determinism.Analyzer, "exempt")
}
