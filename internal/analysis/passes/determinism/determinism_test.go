package determinism_test

import (
	"testing"

	"pebble/internal/analysis/analysistest"
	"pebble/internal/analysis/passes/determinism"
)

func TestDeterminism(t *testing.T) {
	// The clock/rand checks are scoped to the repo's identifier-producing
	// packages; point them at the fixture for the test.
	def := determinism.Analyzer.Flags.Lookup("idpkgs").DefValue
	if err := determinism.Analyzer.Flags.Set("idpkgs", "determinism"); err != nil {
		t.Fatal(err)
	}
	defer determinism.Analyzer.Flags.Set("idpkgs", def)
	analysistest.Run(t, analysistest.TestData(), determinism.Analyzer, "determinism")
}
