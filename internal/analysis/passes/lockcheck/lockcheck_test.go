package lockcheck_test

import (
	"testing"

	"pebble/internal/analysis/analysistest"
	"pebble/internal/analysis/passes/lockcheck"
)

func TestLockCheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockcheck.Analyzer, "lockcheck")
}
