// Fixture for the lockcheck analyzer: the `// guarded by <mu>` field-comment
// convention and the ways a function may legitimately hold the lock.
package lockcheck

import "sync"

type counter struct {
	mu sync.RWMutex
	n  int            // guarded by mu
	m  map[string]int // guarded by mu
}

// newCounter touches guarded fields through a function-local value, before
// the counter is shared: allowed.
func newCounter() *counter {
	c := &counter{m: make(map[string]int)}
	c.n = 1
	return c
}

func (c *counter) inc(k string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	c.m[k]++
}

func (c *counter) get() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

// bad reads a guarded field with no locking at all.
func (c *counter) bad() int {
	return c.n // want `counter.n is guarded by mu`
}

// badWrite mutates the guarded map unlocked, through a parameter.
func badWrite(c *counter, k string) {
	c.m[k] = 1 // want `counter.m is guarded by mu`
}

// sumLocked carries the Locked suffix: callers hold mu.
func (c *counter) sumLocked() int {
	total := c.n
	for _, v := range c.m {
		total += v
	}
	return total
}

// snapshot copies the table; caller must hold mu.
func (c *counter) snapshot() map[string]int {
	out := make(map[string]int, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}
