// Package lockcheck enforces the repo's `// guarded by <mu>` field-comment
// convention: a struct field whose declaration carries that comment may only
// be accessed by functions that visibly hold the named lock. A function
// counts as holding the lock when it
//
//   - calls <base>.<mu>.Lock() or <base>.<mu>.RLock() on the same base
//     variable anywhere in its body (the dominant defer-unlock idiom), or
//   - is named with the *Locked suffix (the repo's convention for helpers
//     whose callers hold the lock), or
//   - documents the transfer with "must hold"/"while holding" in its doc
//     comment, or
//   - accesses the field through a variable declared locally in the same
//     function (construction before the value is shared, e.g. NewCollector).
//
// The check is flow-insensitive by design: it cannot prove the lock is held
// at the access, only that the function participates in the discipline. That
// is exactly the property that decays silently as code grows — a new method
// touching collector shards or scheduler maps without any locking at all.
package lockcheck

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"pebble/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc: `flag accesses to '// guarded by mu' struct fields from functions that do not hold the lock

Annotate shared struct state with a '// guarded by <mutexfield>' comment on
the field; every function accessing the field must lock that mutex, carry the
*Locked name suffix, or state 'caller must hold' in its doc comment.`,
	Run: run,
}

var guardedRe = regexp.MustCompile(`(?i)guarded by (\w+)`)
var holderDocRe = regexp.MustCompile(`(?i)(must hold|while holding|holds) \w*`)

func run(pass *analysis.Pass) (interface{}, error) {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil, nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, guards)
		}
	}
	return nil, nil
}

// guardKey identifies a guarded field by its defining object.
type guardInfo struct {
	structName string
	guardField string
}

// collectGuards maps each guarded field's types.Object to its guard.
func collectGuards(pass *analysis.Pass) map[types.Object]guardInfo {
	guards := make(map[types.Object]guardInfo)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					guard := guardName(field)
					if guard == "" {
						continue
					}
					for _, name := range field.Names {
						if obj := pass.TypesInfo.Defs[name]; obj != nil {
							guards[obj] = guardInfo{structName: ts.Name.Name, guardField: guard}
						}
					}
				}
			}
		}
	}
	return guards
}

func guardName(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, guards map[types.Object]guardInfo) {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return
	}
	if fd.Doc != nil && holderDocRe.MatchString(fd.Doc.Text()) {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		fieldObj := selection.Obj()
		g, guarded := guards[fieldObj]
		if !guarded {
			return true
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok {
			return true // compound base: beyond this check's reach
		}
		baseObj := pass.TypesInfo.ObjectOf(base)
		if baseObj == nil {
			return true
		}
		if isFunctionLocal(pass, fd, baseObj) {
			return true // not yet shared: constructors and local copies
		}
		if locksGuard(pass, fd.Body, baseObj, g.guardField) {
			return true
		}
		pass.Reportf(sel.Pos(), "%s.%s is guarded by %s but %s neither locks it, has the Locked suffix, nor documents 'caller must hold %s'", g.structName, fieldObj.Name(), g.guardField, fd.Name.Name, g.guardField)
		return true
	})
}

// isFunctionLocal reports whether obj is a variable declared in fd's body
// (not a receiver or parameter): a value still private to the constructor.
func isFunctionLocal(pass *analysis.Pass, fd *ast.FuncDecl, obj types.Object) bool {
	if obj.Pos() == 0 {
		return false
	}
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			for _, n := range f.Names {
				if pass.TypesInfo.Defs[n] == obj {
					return false
				}
			}
		}
	}
	for _, f := range fd.Type.Params.List {
		for _, n := range f.Names {
			if pass.TypesInfo.Defs[n] == obj {
				return false
			}
		}
	}
	return fd.Body.Pos() <= obj.Pos() && obj.Pos() < fd.Body.End()
}

// locksGuard reports whether body contains base.guard.Lock() or
// base.guard.RLock() for the same base object.
func locksGuard(pass *analysis.Pass, body *ast.BlockStmt, baseObj types.Object, guard string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok || inner.Sel.Name != guard {
			return true
		}
		baseIdent, ok := inner.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pass.TypesInfo.ObjectOf(baseIdent) == baseObj {
			found = true
		}
		return !found
	})
	return found
}
