package capturesound_test

import (
	"testing"

	"pebble/internal/analysis/analysistest"
	"pebble/internal/analysis/passes/capturesound"
)

func TestCaptureSound(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), capturesound.Analyzer, "capturesound")
}
