// Package capturesound enforces the soundness contract of lightweight
// provenance capture (Def. 5.1 / Tab. 5 of the source paper): every
// expression operator must report the access paths its evaluation reads.
// The engine populates the accessed-path set A of an operator's structural
// provenance from Expr.Paths(); an Eval implementation that reads a nested
// attribute Paths() cannot report silently under-approximates A, and
// backtraces would miss markings on that attribute.
//
// The analyzer looks at every type implementing the expression shape — a
// value type with both an Eval method and a Paths (a.k.a. AccessedPaths)
// method — and flags Eval-side nested-value accessor calls with constant
// attribute names (v.Get("attr"), path.New("attr"), path.MustParse("a.b"))
// when the type's Paths method provably cannot mention that attribute: its
// body builds paths exclusively from literals (or returns none at all) and
// none of those literals cover the accessed attribute. Paths methods that
// delegate (stored path fields, sub-expression Paths() calls) are beyond
// static proof and are left alone.
package capturesound

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"pebble/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "capturesound",
	Doc: `flag Eval-side nested reads that the expression's Paths method cannot report

Every engine expression must return the access paths its Eval reads, or the
captured provenance under-approximates the accessed-path set A (Def. 5.1).`,
	Run: run,
}

// exprMethods records the Eval/Paths method declarations of one candidate
// expression type.
type exprMethods struct {
	eval  *ast.FuncDecl
	paths *ast.FuncDecl
}

func run(pass *analysis.Pass) (interface{}, error) {
	byType := make(map[string]*exprMethods)
	var order []string
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || fd.Body == nil {
				continue
			}
			name := recvTypeName(fd.Recv.List[0].Type)
			if name == "" {
				continue
			}
			m := byType[name]
			if m == nil {
				m = &exprMethods{}
				byType[name] = m
				order = append(order, name)
			}
			switch fd.Name.Name {
			case "Eval":
				if len(fd.Type.Params.List) >= 1 {
					m.eval = fd
				}
			case "Paths", "AccessedPaths":
				if fd.Type.Params.NumFields() == 0 {
					m.paths = fd
				}
			}
		}
	}
	for _, name := range order {
		m := byType[name]
		if m.eval == nil || m.paths == nil {
			continue
		}
		mentioned, provable := pathsMentions(pass, m.paths)
		if !provable {
			continue
		}
		for _, acc := range evalAccesses(pass, m.eval) {
			if !covered(mentioned, acc.attr) {
				pass.Reportf(acc.node.Pos(), "%s.Eval reads attribute %q but %s.%s cannot report it: add the path to the reported access paths (Def. 5.1 capture soundness)", name, acc.attr, name, m.paths.Name.Name)
			}
		}
	}
	return nil, nil
}

func recvTypeName(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	}
	return ""
}

// accessLit is one constant-attribute nested read found in an Eval body.
type accessLit struct {
	attr string
	node ast.Node
}

// evalAccesses collects constant attribute names read via nested-value
// accessors inside an Eval body: method calls named Get with a constant
// string argument, and path-construction calls (New/Parse/MustParse from a
// package named "path") with constant arguments.
func evalAccesses(pass *analysis.Pass, fd *ast.FuncDecl) []accessLit {
	var out []accessLit
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// v.Get("attr") — the nested.Value attribute accessor.
		if sel.Sel.Name == "Get" && len(call.Args) == 1 {
			if isMethod(pass, sel) {
				if s, ok := constString(pass, call.Args[0]); ok {
					out = append(out, accessLit{attr: s, node: call})
				}
			}
			return true
		}
		// path.New("a", "b") / path.MustParse("a.b[0]") / path.Parse(...)
		// constructed inline in Eval: the read path never went through the
		// type's stored, reported paths.
		if x, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.Uses[x].(*types.PkgName); ok && pn.Imported().Name() == "path" {
				switch sel.Sel.Name {
				case "New", "Parse", "MustParse":
					for _, arg := range call.Args {
						if s, ok := constString(pass, arg); ok {
							for _, attr := range splitPathLiteral(s) {
								out = append(out, accessLit{attr: attr, node: call})
							}
						}
					}
				}
			}
		}
		return true
	})
	return out
}

// isMethod reports whether sel selects a method (not a package function or
// struct field) — distinguishing v.Get from somepkg.Get.
func isMethod(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.TypesInfo.Selections[sel]
	return ok && s.Kind() == types.MethodVal
}

func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// splitPathLiteral breaks a path literal like "user.id[0]" into its
// attribute names.
func splitPathLiteral(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ".") {
		if i := strings.IndexByte(part, '['); i >= 0 {
			part = part[:i]
		}
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

// pathsMentions analyzes a Paths/AccessedPaths body. provable is true when
// the body builds its result purely from constants, so the full set of
// attribute names it can ever mention is the returned set; any delegation
// (receiver fields, calls other than literal path constructors, non-constant
// identifiers) makes the result unprovable and the type is skipped.
func pathsMentions(pass *analysis.Pass, fd *ast.FuncDecl) (mentioned []string, provable bool) {
	provable = true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if !provable {
			return false
		}
		switch n := n.(type) {
		case *ast.BasicLit:
			if s, ok := constString(pass, n); ok {
				mentioned = append(mentioned, splitPathLiteral(s)...)
			}
		case *ast.SelectorExpr:
			// Selector on anything but a package (receiver field, sub-expr
			// method) can smuggle in arbitrary paths. Literal path
			// constructors from a "path" package stay provable; their string
			// arguments are collected by the BasicLit case.
			if x, ok := n.X.(*ast.Ident); ok {
				if pn, ok := pass.TypesInfo.Uses[x].(*types.PkgName); ok {
					if pn.Imported().Name() == "path" || pn.Imported().Name() == "nested" {
						return true
					}
				}
			}
			provable = false
			return false
		}
		return true
	})
	return mentioned, provable
}

func covered(mentioned []string, attr string) bool {
	for _, m := range mentioned {
		if m == attr {
			return true
		}
	}
	return false
}
