// Fixture for the capturesound analyzer: expression types whose Eval reads
// attributes their Paths/AccessedPaths method can or cannot report.
package capturesound

import (
	"nested"
	"path"
)

// colExpr stores its path and reports it. Delegating Paths bodies are beyond
// static proof, so the analyzer stays silent about the whole type.
type colExpr struct {
	p path.Path
}

func (c colExpr) Eval(d nested.Value) (nested.Value, error) {
	v, _ := c.p.Eval(d)
	return v, nil
}

func (c colExpr) Paths() []path.Path {
	return []path.Path{c.p}
}

// scoreExpr reads "score" but reports no paths at all: capture-unsound.
type scoreExpr struct{}

func (scoreExpr) Eval(d nested.Value) (nested.Value, error) {
	v, _ := d.Get("score") // want `scoreExpr.Eval reads attribute "score" but scoreExpr.Paths cannot report it`
	return v, nil
}

func (scoreExpr) Paths() []path.Path {
	return nil
}

// userExpr reads "user" and reports it via a literal constructor: clean.
type userExpr struct{}

func (userExpr) Eval(d nested.Value) (nested.Value, error) {
	v, _ := d.Get("user")
	return v, nil
}

func (userExpr) Paths() []path.Path {
	return []path.Path{path.New("user")}
}

// batchSumExpr is the vectorized-loop shape: Eval walks a whole batch of
// element values and reads "weight" from each. The per-element read inside
// the loop must still surface in Paths — bulk evaluation does not exempt an
// expression from the capture contract.
type batchSumExpr struct{}

func (batchSumExpr) Eval(d nested.Value) (nested.Value, error) {
	var out nested.Value
	for _, elem := range d.Elems() {
		v, _ := elem.Get("weight") // want `batchSumExpr.Eval reads attribute "weight" but batchSumExpr.Paths cannot report it`
		out = v
	}
	return out, nil
}

func (batchSumExpr) Paths() []path.Path {
	return []path.Path{path.New("items")}
}

// batchMaskExpr is the clean twin: the same bulk loop, with the per-element
// read reported alongside the collection it ranges over.
type batchMaskExpr struct{}

func (batchMaskExpr) Eval(d nested.Value) (nested.Value, error) {
	var out nested.Value
	for _, elem := range d.Elems() {
		v, _ := elem.Get("weight")
		out = v
	}
	return out, nil
}

func (batchMaskExpr) Paths() []path.Path {
	return []path.Path{path.New("items"), path.New("weight")}
}

// nameExpr evaluates "user.name" inline but only ever reports "user".
type nameExpr struct{}

func (nameExpr) Eval(d nested.Value) (nested.Value, error) {
	p := path.MustParse("user.name") // want `nameExpr.Eval reads attribute "name"`
	v, _ := p.Eval(d)
	return v, nil
}

func (nameExpr) AccessedPaths() []path.Path {
	return []path.Path{path.MustParse("user")}
}
