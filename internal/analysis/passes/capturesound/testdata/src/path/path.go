// Package path is a fixture stand-in for the repo's access-path package.
package path

import (
	"strings"

	"nested"
)

// Step is one attribute hop.
type Step struct{ Attr string }

// Path addresses a nested attribute.
type Path []Step

// New builds a path from attribute names.
func New(attrs ...string) Path {
	p := make(Path, 0, len(attrs))
	for _, a := range attrs {
		p = append(p, Step{Attr: a})
	}
	return p
}

// MustParse parses a dotted path literal.
func MustParse(s string) Path {
	return New(strings.Split(s, ".")...)
}

// Eval walks the path through v.
func (p Path) Eval(v nested.Value) (nested.Value, bool) {
	ok := true
	for _, st := range p {
		v, ok = v.Get(st.Attr)
		if !ok {
			return v, false
		}
	}
	return v, ok
}
