// Package nested is a fixture stand-in for the engine's nested value model.
package nested

// Value is a minimal nested record.
type Value struct {
	fields map[string]Value
}

// Get returns the named attribute.
func (v Value) Get(name string) (Value, bool) {
	f, ok := v.fields[name]
	return f, ok
}

// Elems returns the collection elements of a bag/array value.
func (v Value) Elems() []Value {
	return nil
}
