// Package hotalloc flags per-row allocations in the engine's morsel loops.
// A hot loop is a range over a slice of row-shaped elements (the -hottypes
// list: Row, pending, keyedRow) or any loop nested inside one — the code that
// runs once per data row. Inside such loops, slice/map composite literals,
// make, new, &T{} heap literals, explicit interface conversions (boxing), and
// append growth on locals with no pre-sized definition all allocate per row
// and show up directly in morsel throughput; they must be pool-fed, hoisted,
// or pre-sized outside the loop, or carry a //pebblevet:ignore hotalloc
// justification.
//
// The append check uses the dataflow engine's reaching definitions: an
// append target is clean when ANY reaching definition is pre-sized (make with
// capacity, make with non-zero length, or an x[:0]-style reuse) — a
// deliberate under-approximation that keeps the check quiet on the
// hoisted-backing-array idiom. Struct value literals (pending{...}) are not
// allocations; implicit interface boxing at call sites is out of scope.
// Both documented in DESIGN.md §11.
package hotalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"pebble/internal/analysis"
	"pebble/internal/analysis/dataflow"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: `flag allocations inside per-row morsel loops in the configured packages

Composite literals of slice/map type, make, new, &T{}, explicit interface
conversions, and append growth on non-pre-sized locals inside a hot loop (a
range over rows, or any loop nested in one) allocate once per data row.
Hoist, pre-size, or pool the allocation, or annotate an accepted one with
//pebblevet:ignore hotalloc -- reason.`,
	Run: run,
}

var (
	pkgs     string
	hottypes string
)

func init() {
	Analyzer.Flags.StringVar(&pkgs, "pkgs", "pebble/internal/engine", "comma-separated import paths whose loops are checked")
	Analyzer.Flags.StringVar(&hottypes, "hottypes", "Row,pending,keyedRow", "comma-separated element type names whose slices mark a per-row loop")
}

func run(pass *analysis.Pass) (interface{}, error) {
	watched := make(map[string]bool)
	for _, p := range strings.Split(pkgs, ",") {
		if p = strings.TrimSpace(p); p != "" {
			watched[p] = true
		}
	}
	if pass.Pkg != nil && !watched[pass.Pkg.Path()] {
		return nil, nil
	}
	hot := make(map[string]bool)
	for _, t := range strings.Split(hottypes, ",") {
		if t = strings.TrimSpace(t); t != "" {
			hot[t] = true
		}
	}

	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, hot, fd, nil)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkFunc(pass, hot, nil, lit)
				}
				return true
			})
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, hot map[string]bool, fd *ast.FuncDecl, lit *ast.FuncLit) {
	var body *ast.BlockStmt
	var r *dataflow.Reaching // built lazily: only append checks need it
	if fd != nil {
		body = fd.Body
	} else {
		body = lit.Body
	}
	reaching := func() *dataflow.Reaching {
		if r == nil {
			if fd != nil {
				r = dataflow.NewReaching(fd, pass.TypesInfo)
			} else {
				r = dataflow.NewReachingLit(lit, pass.TypesInfo)
			}
		}
		return r
	}

	// Find the hot loops: per-row ranges and everything nested inside them.
	var hotLoops []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != ast.Node(lit) {
			return false // closures are analyzed on their own
		}
		rs, ok := n.(*ast.RangeStmt)
		if ok && rowRange(pass.TypesInfo, hot, rs) {
			hotLoops = append(hotLoops, rs)
			return true
		}
		return true
	})
	if len(hotLoops) == 0 {
		return
	}
	inHot := func(n ast.Node) bool {
		for _, l := range hotLoops {
			// The allocation must be in the loop BODY, not the range header.
			if rs := l.(*ast.RangeStmt); n.Pos() >= rs.Body.Pos() && n.End() <= rs.Body.End() {
				return true
			}
		}
		return false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != ast.Node(lit) {
			return false
		}
		if n == nil || !inHot(n) {
			return true
		}
		switch e := n.(type) {
		case *ast.CompositeLit:
			t := pass.TypesInfo.Types[e].Type
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				pass.Reportf(e.Pos(), "slice literal allocated in a per-row loop; hoist or pool it — this allocation recurs once per row")
			case *types.Map:
				pass.Reportf(e.Pos(), "map literal allocated in a per-row loop; hoist it — this allocation recurs once per row")
			}
		case *ast.UnaryExpr:
			if cl, ok := e.X.(*ast.CompositeLit); ok && e.Op.String() == "&" {
				pass.Reportf(e.Pos(), "&%s{...} heap allocation in a per-row loop; reuse a pooled or hoisted object — this allocation recurs once per row", typeName(pass.TypesInfo.Types[cl].Type))
			}
		case *ast.CallExpr:
			checkCall(pass, hot, reaching, e)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, hot map[string]bool, reaching func() *dataflow.Reaching, call *ast.CallExpr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch fun.Name {
		case "make":
			if isBuiltin(pass.TypesInfo, fun) {
				pass.Reportf(call.Pos(), "make in a per-row loop allocates once per row; hoist the buffer outside the loop and reslice per row")
			}
		case "new":
			if isBuiltin(pass.TypesInfo, fun) {
				pass.Reportf(call.Pos(), "new in a per-row loop allocates once per row; reuse a hoisted or pooled object")
			}
		case "append":
			if isBuiltin(pass.TypesInfo, fun) {
				checkAppend(pass, reaching, call)
			}
		default:
			// Explicit interface conversion: T(x) where T is an interface
			// type boxes x per row.
			if tv, ok := pass.TypesInfo.Types[fun]; ok && tv.IsType() {
				if _, isIface := tv.Type.Underlying().(*types.Interface); isIface {
					pass.Reportf(call.Pos(), "conversion to interface type in a per-row loop boxes the value once per row; keep it concrete inside the loop")
				}
			}
		}
	case *ast.SelectorExpr:
		if tv, ok := pass.TypesInfo.Types[fun]; ok && tv.IsType() {
			if _, isIface := tv.Type.Underlying().(*types.Interface); isIface {
				pass.Reportf(call.Pos(), "conversion to interface type in a per-row loop boxes the value once per row; keep it concrete inside the loop")
			}
		}
	}
}

// checkAppend flags append targets that can only grow by reallocation: a
// plain local identifier none of whose reaching definitions is pre-sized.
// Appends through fields or elements are skipped (the container's sizing is
// not visible intraprocedurally — documented incompleteness).
func checkAppend(pass *analysis.Pass, reaching func() *dataflow.Reaching, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return
	}
	r := reaching()
	n := nodeContaining(r, call)
	if n == nil {
		return
	}
	// Loop-carried self-appends (x = append(x, ...)) preserve whatever sizing
	// the initial definition had; only the non-append "initial" defs decide.
	initial := 0
	for _, d := range r.ReachingAt(v, n) {
		if isSelfAppend(pass.TypesInfo, d, v) {
			continue
		}
		initial++
		if d.Node == nil || preSized(pass.TypesInfo, d.Rhs) {
			return // some path provides a pre-sized (or caller-owned) buffer
		}
	}
	if initial == 0 {
		return
	}
	pass.Reportf(call.Pos(), "append to %s grows an unsized buffer in a per-row loop; pre-size it outside the loop (make with capacity) or reuse with [:0]", v.Name())
}

// isSelfAppend reports whether def d rebinds v from an append whose first
// argument is v itself (the loop-carried half of the append idiom).
func isSelfAppend(info *types.Info, d *dataflow.Def, v *types.Var) bool {
	if d.Rhs == nil {
		return false
	}
	call, ok := ast.Unparen(d.Rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fun.Name != "append" || !isBuiltin(info, fun) {
		return false
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return false
	}
	target, _ := info.Uses[id].(*types.Var)
	return target == v
}

// preSized reports whether a defining expression provides capacity up front:
// make with an explicit capacity, make with a non-zero length, or a
// [:0]-style reslice of an existing buffer.
func preSized(info *types.Info, rhs ast.Expr) bool {
	rhs = ast.Unparen(rhs)
	switch e := rhs.(type) {
	case *ast.CallExpr:
		fun, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok || fun.Name != "make" || !isBuiltin(info, fun) {
			return false
		}
		if len(e.Args) >= 3 {
			return true // explicit capacity
		}
		if len(e.Args) == 2 {
			// Non-zero constant length: elements are assigned by index.
			if tv, ok := info.Types[e.Args[1]]; ok && tv.Value != nil {
				return tv.Value.String() != "0"
			}
			return true // dynamic length, e.g. make([]T, len(rows))
		}
		return false
	case *ast.SliceExpr:
		// buf[:0] and friends reuse existing backing storage.
		return true
	}
	return false
}

// rowRange reports whether rs ranges over a slice (or array) whose element's
// named type is in the hot set; pointer elements count too.
func rowRange(info *types.Info, hot map[string]bool, rs *ast.RangeStmt) bool {
	t := info.Types[rs.X].Type
	if t == nil {
		return false
	}
	var elem types.Type
	switch u := t.Underlying().(type) {
	case *types.Slice:
		elem = u.Elem()
	case *types.Array:
		elem = u.Elem()
	default:
		return false
	}
	if p, ok := elem.Underlying().(*types.Pointer); ok {
		elem = p.Elem()
	}
	named, ok := elem.(*types.Named)
	return ok && hot[named.Obj().Name()]
}

func nodeContaining(r *dataflow.Reaching, target ast.Node) *dataflow.Node {
	var best *dataflow.Node
	for _, n := range r.Graph.Nodes {
		if n.Stmt == nil {
			continue
		}
		if target.Pos() >= n.Stmt.Pos() && target.End() <= n.Stmt.End() {
			// Prefer the innermost (smallest) statement.
			if best == nil || n.Stmt.Pos() >= best.Stmt.Pos() && n.Stmt.End() <= best.Stmt.End() {
				best = n
			}
		}
	}
	return best
}

func isBuiltin(info *types.Info, id *ast.Ident) bool {
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

func typeName(t types.Type) string {
	if t == nil {
		return "T"
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
