package hotalloc

// Row and pending mirror the engine's hot row shapes; their names are in the
// analyzer's default -hottypes list, so ranging over []Row marks a hot loop.
type Row struct {
	ID    int64
	Value int
}

type pending struct {
	id int64
}

type boxer interface{ box() }

type val int

func (val) box() {}
