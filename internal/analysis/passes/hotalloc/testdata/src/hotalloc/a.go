// Fixture for the hotalloc analyzer: per-row allocations inside morsel
// loops. The test points -hotalloc.pkgs at this package; the hot element
// types are the defaults (Row, pending, keyedRow), declared in types.go.
package hotalloc

func flagged(rows []Row) []pending {
	var out []pending
	for _, r := range rows {
		tmp := []int64{r.ID}    // want `slice literal allocated in a per-row loop`
		m := map[string]int{}   // want `map literal allocated in a per-row loop`
		p := &pending{id: r.ID} // want `heap allocation in a per-row loop`
		buf := make([]byte, 0)  // want `make in a per-row loop`
		q := new(pending)       // want `new in a per-row loop`
		_, _, _, _, _ = tmp, m, p, buf, q
		out = append(out, pending{id: r.ID}) // want `append to out grows an unsized buffer in a per-row loop`
	}
	return out
}

func boxing(rows []Row) {
	for _, r := range rows {
		x := boxer(val(r.Value)) // want `conversion to interface type in a per-row loop`
		_ = x
	}
}

func nestedLoop(rows []Row, parts []int) {
	for range rows {
		for range parts {
			s := make([]int, 0) // want `make in a per-row loop`
			_ = s
		}
	}
}

// clean is flagged's pre-sized twin: the output has a capacity floor, the
// scratch buffer is hoisted and reused with [:0], and the struct *value*
// literal in the append argument is not an allocation.
func clean(rows []Row) []pending {
	out := make([]pending, 0, len(rows))
	scratch := make([]byte, 0, 64)
	for _, r := range rows {
		scratch = scratch[:0]
		scratch = append(scratch, byte(r.Value))
		out = append(out, pending{id: r.ID})
	}
	return out
}

// cleanParamAppend: the target is caller-owned; its sizing is the caller's
// responsibility (entry definitions count as pre-sized).
func cleanParamAppend(rows []Row, out []pending) []pending {
	for _, r := range rows {
		out = append(out, pending{id: r.ID})
	}
	return out
}

// cleanFlatBacking: the hoisted-backing-array idiom — one allocation per
// morsel, a distinct full-capacity subslice per row.
func cleanFlatBacking(rows []Row) [][]int64 {
	keys := make([][]int64, len(rows))
	flat := make([]int64, len(rows))
	for i, r := range rows {
		ks := flat[i : i+1 : i+1]
		ks[0] = r.ID
		keys[i] = ks
	}
	return keys
}

// cleanIgnored: the escape hatch — a justified per-row allocation.
func cleanIgnored(rows []Row) {
	for _, r := range rows {
		buf := make([]byte, r.Value) //pebblevet:ignore hotalloc -- fixture: size is data-dependent by design
		_ = buf
	}
}

// cleanOutsideLoop: allocations before or after the hot loop are fine.
func cleanOutsideLoop(rows []Row) map[int64]int {
	seen := make(map[int64]int, len(rows))
	for _, r := range rows {
		seen[r.ID]++
	}
	return seen
}
