package hotalloc_test

import (
	"testing"

	"pebble/internal/analysis/analysistest"
	"pebble/internal/analysis/passes/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	// The analyzer is scoped to the repo's engine package; point it at the
	// fixture for the test.
	def := hotalloc.Analyzer.Flags.Lookup("pkgs").DefValue
	if err := hotalloc.Analyzer.Flags.Set("pkgs", "hotalloc"); err != nil {
		t.Fatal(err)
	}
	defer hotalloc.Analyzer.Flags.Set("pkgs", def)
	analysistest.Run(t, analysistest.TestData(), hotalloc.Analyzer, "hotalloc")
}
