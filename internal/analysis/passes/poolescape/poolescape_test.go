package poolescape_test

import (
	"testing"

	"pebble/internal/analysis/analysistest"
	"pebble/internal/analysis/passes/poolescape"
)

func TestPoolEscape(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), poolescape.Analyzer, "poolescape")
}
