// Fixture for the join-probe / aggregate kernel shapes (DESIGN.md §13): the
// kernel pool helpers are recognized sources and puts, `defer put(x)`
// releases at function exit rather than at its syntactic position,
// borrow-methods propagate taint from pooled receivers, and closures passed
// to configured synchronous drivers (sort.Slice, forEachPartition) do not
// count as escapes.
package poolescape

import (
	"sort"
	"sync"
)

// keyTable mirrors the engine's pooled flat hash table; keyBytes (a
// configured borrow method) returns a slice aliasing its pooled arena.
type keyTable struct {
	arena []byte
	head  []int32
}

func (t *keyTable) keyBytes(g int32) []byte { return t.arena[g : g+1] }

var keyTablePool = sync.Pool{New: func() interface{} { return new(keyTable) }}

func getKeyTable(n int) *keyTable { return keyTablePool.Get().(*keyTable) }

func putKeyTable(t *keyTable) { keyTablePool.Put(t) }

type executor struct{}

// forEachPartition is a configured synchronous driver: the closure returns
// before forEachPartition does.
func (e *executor) forEachPartition(n int, f func(int) error) error {
	for i := 0; i < n; i++ {
		if err := f(i); err != nil {
			return err
		}
	}
	return nil
}

// spawn is NOT a configured synchronous driver.
func (e *executor) spawn(f func(int) error) {
	go func() { _ = f(0) }()
}

// cleanDeferredPut: the kernels' standard release idiom — every read between
// the defer and the return happens before the Put runs.
func cleanDeferredPut() int {
	t := getKeyTable(8)
	defer putKeyTable(t)
	n := 0
	for _, h := range t.head {
		n += int(h)
	}
	return n
}

// cleanSortClosure: sort.Slice runs its comparator synchronously, so the
// captured pooled table cannot outlive the deferred Put.
func cleanSortClosure(order []int) {
	t := getKeyTable(8)
	defer putKeyTable(t)
	sort.Slice(order, func(i, j int) bool { return t.head[order[i]] < t.head[order[j]] })
}

// cleanPartitionClosure: the engine's forEachPartition barrier waits for
// every worker closure before returning (the broadcast probe shape).
func cleanPartitionClosure(e *executor) error {
	t := getKeyTable(8)
	defer putKeyTable(t)
	return e.forEachPartition(4, func(part int) error {
		_ = t.head
		return nil
	})
}

// escapeViaAsyncClosure: a goroutine-spawning driver is not synchronous; the
// capture outlives the Put.
func escapeViaAsyncClosure(e *executor) {
	t := getKeyTable(8)
	defer putKeyTable(t)
	e.spawn(func(int) error {
		_ = t.head // want `closure captures pool-obtained value t`
		return nil
	})
}

// escapeViaKeyTableReturn: the kernel helpers are configured sources, so a
// table leaking via return is caught like any pooled value.
func escapeViaKeyTableReturn() *keyTable {
	t := getKeyTable(8)
	return t // want `pool-obtained value escapes via return`
}

// escapeViaBorrowMethod: keyBytes aliases the pooled arena, so its result is
// as borrowed as the table itself.
func escapeViaBorrowMethod() []byte {
	t := getKeyTable(8)
	defer putKeyTable(t)
	return t.keyBytes(0) // want `pool-obtained value escapes via return`
}

// useAfterExplicitPut: an explicit (non-deferred) put still releases at its
// own position.
func useAfterExplicitPut() int {
	t := getKeyTable(8)
	putKeyTable(t)
	return len(t.head) // want `use of pooled value t after Put`
}
