package poolescape

// buffer is the pooled object; next lets one pooled value own another.
type buffer struct {
	data []byte
	next *buffer
}

// holder is a non-pooled container: storing a pooled value into it escapes.
type holder struct {
	buf *buffer
}
