// Fixture for the poolescape analyzer: pooled values escaping their
// borrowing function, use after Put, and double Put. The types it uses live
// in b.go — the loader compiles the whole fixture directory as one package,
// so the cross-file references exercise the multi-file path.
package poolescape

import "sync"

var bufPool = sync.Pool{New: func() interface{} { return new(buffer) }}

// getBatch and putBatch are the configured pool boundary: their bodies are
// exempt, and their callers are the audited borrowers.
func getBatch() *buffer { return bufPool.Get().(*buffer) }

func putBatch(b *buffer) { bufPool.Put(b) }

var global *buffer

func escapeViaReturn() *buffer {
	b := getBatch()
	return b // want `pool-obtained value escapes via return`
}

func escapeViaSyncPoolDirect() *buffer {
	v := bufPool.Get().(*buffer)
	return v // want `pool-obtained value escapes via return`
}

func escapeViaClosure() func() int {
	b := getBatch()
	f := func() int { return len(b.data) } // want `closure captures pool-obtained value b`
	putBatch(b)
	return f
}

func escapeViaField(h *holder) {
	b := getBatch()
	h.buf = b // want `pool-obtained value stored into a field of a non-pooled object`
	putBatch(b)
}

func escapeViaGlobal() {
	b := getBatch()
	global = b // want `pool-obtained value stored into package-level variable global`
}

func escapeViaContainer(m map[int]*buffer) {
	b := getBatch()
	m[0] = b // want `pool-obtained value stored into a non-pooled container`
}

func escapeViaSend(ch chan *buffer) {
	b := getBatch()
	ch <- b // want `pool-obtained value escapes via channel send`
}

func useAfterPut() int {
	b := getBatch()
	putBatch(b)
	return len(b.data) // want `use of pooled value b after Put`
}

func doublePut() {
	b := getBatch()
	putBatch(b)
	putBatch(b) // want `double Put of pooled value b`
}

// cleanBorrow is the contract followed: read, then release, nothing escapes.
func cleanBorrow() int {
	b := getBatch()
	n := len(b.data)
	putBatch(b)
	return n
}

// cleanRedefine: a fresh (non-pooled) definition kills both the taint and the
// released state, so the return is fine.
func cleanRedefine() *buffer {
	b := getBatch()
	putBatch(b)
	b = new(buffer)
	return b
}

// cleanNested: storing one pooled value into another pooled object's field is
// allowed — the container's Put governs both lifetimes.
func cleanNested() {
	b := getBatch()
	c := getBatch()
	b.next = c
	putBatch(c)
	putBatch(b)
}

// cleanConditionalPut: on the branch that releases early it immediately
// re-borrows, so no path reads a released value.
func cleanConditionalPut(use bool) {
	b := getBatch()
	if use {
		putBatch(b)
		b = getBatch()
	}
	putBatch(b)
}
