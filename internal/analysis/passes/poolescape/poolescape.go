// Package poolescape enforces the lifetime contract of pooled buffers. Values
// obtained from a sync.Pool.Get or from the repo's pool helpers (getBatch,
// getCol, the id/pos scratch free lists) are borrowed: they may be read,
// passed to calls, and stored inside other pooled objects, but they must not
// escape the borrowing function — not via return, not captured by a closure,
// and not stored into a non-pooled struct field, container, global, or
// channel — because the matching Put recycles the backing memory under later
// morsels. Re-use after Put and double Put are flagged directly.
//
// The analysis is the dataflow engine's taint lattice over reaching
// definitions (DESIGN.md §11): pool-get results taint their definitions,
// taint propagates through copies/slices/composites, and escape points check
// the tainted state at the exact CFG node. Functions named in -sources/-puts/
// -exempt are the audited pool boundary and are skipped — they hold pooled
// values by design and are covered by the alias tests instead.
package poolescape

import (
	"go/ast"
	"go/types"
	"strings"

	"pebble/internal/analysis"
	"pebble/internal/analysis/dataflow"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolescape",
	Doc: `flag pooled values escaping their borrowing function or used after Put

Values from (*sync.Pool).Get or the configured pool helper functions must not
be returned, captured by closures, stored into non-pooled fields, containers,
globals, or channels, used after being released with Put, or released twice.`,
	Run: run,
}

var (
	sources       string
	puts          string
	exempt        string
	borrowMethods string
	syncCallers   string
)

func init() {
	// The source/put lists name the engine's pool boundary: the columnar
	// batch helpers plus the join-probe and aggregate kernel scratch of
	// DESIGN.md §13 (keyTable, group-index scratch, join/aggregate
	// accumulator arrays, flatten element buffers).
	Analyzer.Flags.StringVar(&sources, "sources",
		"getBatch,getCol,getIDScratch,getPosScratch,"+
			"getKeyTable,getGroupScratch,getJoinScratch,getAggScratch,getAggAccum,getFlattenScratch",
		"comma-separated function names whose results are pool-borrowed")
	Analyzer.Flags.StringVar(&puts, "puts",
		"putBatch,putIDScratch,putPosScratch,"+
			"putKeyTable,putGroupScratch,putJoinScratch,putAggScratch,putAggAccum,putFlattenScratch",
		"comma-separated function names that release a pooled value")
	Analyzer.Flags.StringVar(&exempt, "exempt", "decodeColumn,column", "comma-separated function/method names forming the audited pool boundary; their bodies are skipped")
	Analyzer.Flags.StringVar(&borrowMethods, "borrowmethods", "column,keyBytes,matchedFor", "comma-separated method names whose results alias pooled storage of their receiver")
	Analyzer.Flags.StringVar(&syncCallers, "synccallers", "sort.Slice,sort.SliceStable,forEachPartition",
		"comma-separated callee names (pkg.Func or bare method name) that run closure arguments synchronously; closures passed to them cannot outlive a deferred Put")
}

func splitList(s string) map[string]bool {
	m := make(map[string]bool)
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			m[f] = true
		}
	}
	return m
}

type checker struct {
	pass    *analysis.Pass
	sources map[string]bool
	puts    map[string]bool
	borrow  map[string]bool
	sync    map[string]bool
}

func run(pass *analysis.Pass) (interface{}, error) {
	c := &checker{
		pass:    pass,
		sources: splitList(sources),
		puts:    splitList(puts),
		borrow:  splitList(borrowMethods),
		sync:    splitList(syncCallers),
	}
	skip := splitList(exempt)
	for k := range c.sources {
		skip[k] = true
	}
	for k := range c.puts {
		skip[k] = true
	}

	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || skip[fd.Name.Name] {
				continue
			}
			c.checkFunc(dataflow.NewReaching(fd, pass.TypesInfo), fd.Body)
			// Closures get their own intraprocedural analysis: pool values
			// obtained inside the closure must not escape the closure either.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					c.checkFunc(dataflow.NewReachingLit(lit, pass.TypesInfo), lit.Body)
				}
				return true
			})
		}
	}
	return nil, nil
}

// isPoolGet reports whether e obtains a pooled value: a call to
// (*sync.Pool).Get or to one of the configured source helpers.
func (c *checker) isPoolGet(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return c.sources[fun.Name]
	case *ast.SelectorExpr:
		if c.sources[fun.Sel.Name] {
			return true
		}
		return fun.Sel.Name == "Get" && c.isSyncPoolMethod(fun)
	}
	return false
}

func (c *checker) isSyncPoolMethod(sel *ast.SelectorExpr) bool {
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync"
}

// putTarget returns the variable released by statement-level call e
// (put helper or (*sync.Pool).Put with a plain identifier argument), or nil.
func (c *checker) putTarget(e ast.Expr) (*types.Var, *ast.CallExpr) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil, nil
	}
	isPut := false
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		isPut = c.puts[fun.Name]
	case *ast.SelectorExpr:
		isPut = c.puts[fun.Sel.Name] || (fun.Sel.Name == "Put" && c.isSyncPoolMethod(fun))
	}
	if !isPut {
		return nil, nil
	}
	arg := ast.Unparen(call.Args[0])
	if ue, ok := arg.(*ast.UnaryExpr); ok {
		arg = ast.Unparen(ue.X) // Put(&s) releases s
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		return nil, nil
	}
	if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok {
		return v, call
	}
	return nil, nil
}

func (c *checker) checkFunc(r *dataflow.Reaching, body *ast.BlockStmt) {
	taint := dataflow.NewTaint(r, dataflow.TaintConfig{
		Source: c.isPoolGet,
		Borrow: func(call *ast.CallExpr) bool {
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			return ok && c.borrow[sel.Sel.Name]
		},
	})
	c.checkEscapes(r, taint)
	c.checkReleases(r)
}

// checkEscapes flags program points where a tainted (pool-borrowed) value
// leaves the function's control.
func (c *checker) checkEscapes(r *dataflow.Reaching, taint *dataflow.Taint) {
	for _, n := range r.Graph.Nodes {
		if n.Stmt == nil {
			continue
		}
		switch s := n.Stmt.(type) {
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if taint.ExprTaintedAt(res, n) {
					c.pass.Reportf(res.Pos(), "pool-obtained value escapes via return; the pool may recycle its backing memory under the caller — copy it or drop the Put")
				}
			}
		case *ast.AssignStmt:
			c.checkAssign(s, n, taint)
		case *ast.SendStmt:
			if taint.ExprTaintedAt(s.Value, n) {
				c.pass.Reportf(s.Value.Pos(), "pool-obtained value escapes via channel send; the receiver outlives the Put — copy before sending")
			}
		}
		// Closures capturing a tainted variable extend its lifetime past the
		// function's control of Put ordering.
		for _, e := range dataflow.OwnExprs(n.Stmt) {
			c.checkClosures(e, n, taint)
		}
	}
}

func (c *checker) checkAssign(s *ast.AssignStmt, n *dataflow.Node, taint *dataflow.Taint) {
	rhsFor := func(i int) ast.Expr {
		if len(s.Rhs) == len(s.Lhs) {
			return s.Rhs[i]
		}
		return nil // multi-value call: results are untainted
	}
	for i, lhs := range s.Lhs {
		rhs := rhsFor(i)
		if rhs == nil || !taint.ExprTaintedAt(rhs, n) {
			continue
		}
		switch l := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			if !taint.ExprTaintedAt(l.X, n) {
				c.pass.Reportf(lhs.Pos(), "pool-obtained value stored into a field of a non-pooled object; the field outlives the Put — copy it or pool the container")
			}
		case *ast.IndexExpr:
			if !taint.ExprTaintedAt(l.X, n) {
				c.pass.Reportf(lhs.Pos(), "pool-obtained value stored into a non-pooled container; the element outlives the Put — copy it first")
			}
		case *ast.Ident:
			if v, ok := c.pass.TypesInfo.Uses[l].(*types.Var); ok && isPackageLevel(v) {
				c.pass.Reportf(lhs.Pos(), "pool-obtained value stored into package-level variable %s; it outlives every morsel — copy it first", v.Name())
			}
		case *ast.StarExpr:
			if !taint.ExprTaintedAt(l.X, n) {
				c.pass.Reportf(lhs.Pos(), "pool-obtained value stored through a pointer to non-pooled storage; the target outlives the Put — copy it first")
			}
		}
	}
}

// isSyncCaller reports whether call's callee is configured as a synchronous
// closure driver (sort.Slice, the engine's forEachPartition barrier, ...):
// closures passed to it return before it does, so they cannot outlive a
// deferred Put in the enclosing function.
func (c *checker) isSyncCaller(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return c.sync[fun.Name]
	case *ast.SelectorExpr:
		if c.sync[fun.Sel.Name] {
			return true
		}
		if fn, ok := c.pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil {
			return c.sync[fn.Pkg().Name()+"."+fn.Name()]
		}
	}
	return false
}

func (c *checker) checkClosures(e ast.Expr, n *dataflow.Node, taint *dataflow.Taint) {
	exemptLits := map[*ast.FuncLit]bool{}
	ast.Inspect(e, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok && c.isSyncCaller(call) {
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					exemptLits[lit] = true
				}
			}
		}
		lit, ok := x.(*ast.FuncLit)
		if !ok {
			return true
		}
		if exemptLits[lit] {
			return true // synchronous caller: keep scanning for nested lits
		}
		// Free variables: idents used in the lit whose declaration lies
		// outside it.
		reported := false
		ast.Inspect(lit.Body, func(y ast.Node) bool {
			if reported {
				return false
			}
			id, ok := y.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
			if !ok || v.Pos() == 0 {
				return true
			}
			if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
				return true // declared inside the closure
			}
			if taint.VarTaintedAt(v, n) {
				c.pass.Reportf(id.Pos(), "closure captures pool-obtained value %s; if the closure outlives the Put it reads recycled memory — pass a copy instead", v.Name())
				reported = true
			}
			return true
		})
		return false // the lit's own internals are analyzed separately
	})
}

// checkReleases runs a forward "released variables" analysis: after a Put the
// variable must not be read or Put again until redefined.
func (c *checker) checkReleases(r *dataflow.Reaching) {
	g := r.Graph
	// Release sites per node. putVars lists every released variable in
	// discovery order (node scan order), keeping iteration deterministic.
	putsAt := make(map[*dataflow.Node][]*types.Var)
	seen := make(map[*types.Var]bool)
	var putVars []*types.Var
	for _, n := range g.Nodes {
		if n.Stmt == nil {
			continue
		}
		if _, ok := n.Stmt.(*ast.DeferStmt); ok {
			// `defer put(x)` — the kernels' standard release idiom — runs at
			// function exit, not at its syntactic position, so it releases
			// nothing for the remainder of the body. Escapes via return are
			// still caught by checkEscapes independently.
			continue
		}
		node := n
		for _, e := range dataflow.OwnExprs(n.Stmt) {
			ast.Inspect(e, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok {
					if v, _ := c.putTarget(call); v != nil {
						putsAt[node] = append(putsAt[node], v)
						if !seen[v] {
							seen[v] = true
							putVars = append(putVars, v)
						}
					}
				}
				return true
			})
		}
	}
	if len(putVars) == 0 {
		return
	}

	// Fixpoint: IN(n) = ∪ OUT(p); OUT(n) = (IN(n) − redefined(n)) ∪ puts(n).
	in := make([]map[*types.Var]bool, len(g.Nodes))
	out := make([]map[*types.Var]bool, len(g.Nodes))
	for i := range g.Nodes {
		in[i] = make(map[*types.Var]bool)
		out[i] = make(map[*types.Var]bool)
	}
	redef := func(n *dataflow.Node) map[*types.Var]bool {
		m := make(map[*types.Var]bool)
		for _, d := range r.DefsAt(n) {
			m[d.Obj] = true
		}
		return m
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			kills := redef(n)
			for _, v := range putVars {
				if !in[n.Index][v] {
					for _, p := range n.Preds {
						if out[p.Index][v] {
							in[n.Index][v] = true
							changed = true
							break
						}
					}
				}
				if in[n.Index][v] && !kills[v] && !out[n.Index][v] {
					out[n.Index][v] = true
					changed = true
				}
			}
			for _, v := range putsAt[n] {
				if !out[n.Index][v] {
					out[n.Index][v] = true
					changed = true
				}
			}
		}
	}

	for _, n := range g.Nodes {
		if n.Stmt == nil {
			continue
		}
		released := in[n.Index]
		if len(released) == 0 {
			continue
		}
		kills := redef(n)
		// Double Put: putting a variable already released on some path.
		for _, v := range putsAt[n] {
			if released[v] && !kills[v] {
				c.pass.Reportf(n.Stmt.Pos(), "double Put of pooled value %s; the pool hands the same object to two borrowers", v.Name())
			}
		}
		// Use after Put: reading a released variable.
		for _, e := range dataflow.OwnExprs(n.Stmt) {
			c.checkReadsReleased(e, n, released, kills)
		}
	}
}

func (c *checker) checkReadsReleased(e ast.Expr, n *dataflow.Node, released, kills map[*types.Var]bool) {
	// A plain-ident assignment LHS is a redefinition, not a read.
	if as, ok := n.Stmt.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if lhs == e {
				if _, ok := ast.Unparen(e).(*ast.Ident); ok {
					return
				}
			}
		}
	}
	ast.Inspect(e, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok {
			// The Put's own argument read is the release itself; double Put
			// is reported separately.
			if v, _ := c.putTarget(call); v != nil {
				return false
			}
		}
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if released[v] && !kills[v] {
			c.pass.Reportf(id.Pos(), "use of pooled value %s after Put; the pool may already have handed it to another morsel", v.Name())
		}
		return true
	})
}

func isPackageLevel(v *types.Var) bool {
	if v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}
