// Package rangecapture enforces the PartitionSink call-site contract of the
// vectorized capture path (DESIGN.md §10): the morsel handle is obtained once
// per morsel (Partition hoisted out of emission loops), the bulk *Range
// emissions cover contiguous id runs exactly once (a range call inside a loop
// must advance its base monotonically — a loop-invariant base re-emits the
// same ids), row-wise emission ids derive from the enclosing loop's induction
// (monotone or invariant in every enclosing loop), and one operator body
// never mixes row-wise and range emission on the same handle — the
// differential oracle's byte-identity guarantee assumes each morsel is
// entirely one form.
//
// Emission methods are recognized by name and arity on receivers whose
// method set is sink-shaped (it has both a row-wise and a range method), so
// the checks apply to engine.PartitionSink and to fixture doubles alike.
package rangecapture

import (
	"go/ast"
	"go/types"

	"pebble/internal/analysis"
	"pebble/internal/analysis/dataflow"
)

var Analyzer = &analysis.Analyzer{
	Name: "rangecapture",
	Doc: `enforce the PartitionSink morsel contract for row-wise and bulk range emission

Partition handles must be hoisted out of emission loops; range emission inside
a loop must advance its base id monotonically; row-wise out-ids must be
monotone or invariant in every enclosing loop; and an operator body must not
mix row-wise with range emission on the same handle along any control path.`,
	Run: run,
}

// emission method table: name → (number of args, index of the out-id/base
// argument, whether it is the bulk range form).
type emitSig struct {
	args    int
	idArg   int
	isRange bool
}

var emitSigs = map[string]emitSig{
	"SourceRow":    {2, 0, false},
	"Unary":        {2, 1, false},
	"Binary":       {3, 2, false},
	"Flatten":      {3, 2, false},
	"Agg":          {2, 1, false},
	"SourceRows":   {2, 0, true},
	"UnaryRange":   {2, 1, true},
	"BinaryRange":  {3, 2, true},
	"FlattenRange": {3, 2, true},
}

// emitCall is one recognized emission call site.
type emitCall struct {
	call *ast.CallExpr
	sel  *ast.SelectorExpr
	sig  emitSig
	name string
	recv *types.Var // root object of the receiver, if a plain ident
	node *dataflow.Node
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, dataflow.NewReaching(fd, pass.TypesInfo), fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkFunc(pass, dataflow.NewReachingLit(lit, pass.TypesInfo), lit.Body)
				}
				return true
			})
		}
	}
	return nil, nil
}

// sinkShaped reports whether t's method set carries both a row-wise and a
// bulk range emission method — the structural signature of a PartitionSink.
func sinkShaped(t types.Type) bool {
	if t == nil {
		return false
	}
	ms := types.NewMethodSet(t)
	hasRow, hasRange := false, false
	for i := 0; i < ms.Len(); i++ {
		switch ms.At(i).Obj().Name() {
		case "Unary", "SourceRow":
			hasRow = true
		case "UnaryRange", "SourceRows":
			hasRange = true
		}
	}
	if hasRow && hasRange {
		return true
	}
	// Pointer receiver methods.
	if _, ok := t.(*types.Pointer); !ok {
		return sinkShapedPtr(t)
	}
	return false
}

func sinkShapedPtr(t types.Type) bool {
	ms := types.NewMethodSet(types.NewPointer(t))
	hasRow, hasRange := false, false
	for i := 0; i < ms.Len(); i++ {
		switch ms.At(i).Obj().Name() {
		case "Unary", "SourceRow":
			hasRow = true
		case "UnaryRange", "SourceRows":
			hasRange = true
		}
	}
	return hasRow && hasRange
}

func checkFunc(pass *analysis.Pass, r *dataflow.Reaching, body *ast.BlockStmt) {
	info := pass.TypesInfo
	var emits []emitCall
	var partitions []*ast.CallExpr

	for _, n := range r.Graph.Nodes {
		if n.Stmt == nil {
			continue
		}
		for _, e := range dataflow.OwnExprs(n.Stmt) {
			node := n
			ast.Inspect(e, func(x ast.Node) bool {
				if _, ok := x.(*ast.FuncLit); ok {
					return false // analyzed separately
				}
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if sig, ok := emitSigs[sel.Sel.Name]; ok && len(call.Args) == sig.args && sinkShaped(info.Types[sel.X].Type) {
					emits = append(emits, emitCall{
						call: call, sel: sel, sig: sig, name: sel.Sel.Name,
						recv: rootVar(sel.X, info), node: node,
					})
				}
				if sel.Sel.Name == "Partition" && len(call.Args) == 2 && returnsPartitionSink(info, sel) {
					partitions = append(partitions, call)
				}
				return true
			})
		}
	}
	if len(emits) == 0 && len(partitions) == 0 {
		return
	}

	checkMixing(pass, r, emits)
	checkInduction(pass, body, info, emits)
	checkPartitionHoisting(pass, body, partitions, emits)
}

// checkMixing flags operator bodies where a row-wise emission is reachable
// from a range emission (or vice versa) on the same handle: the morsel would
// be partly bulk, partly per-row, breaking the oracle's one-form-per-morsel
// byte identity.
func checkMixing(pass *analysis.Pass, r *dataflow.Reaching, emits []emitCall) {
	reported := map[*ast.CallExpr]bool{}
	for i := range emits {
		for j := range emits {
			a, b := &emits[i], &emits[j]
			if a.sig.isRange == b.sig.isRange {
				continue
			}
			if a.recv == nil || a.recv != b.recv {
				continue
			}
			if a.node == b.node || r.Graph.Reachable(a.node, b.node) {
				if !reported[b.call] {
					reported[b.call] = true
					pass.Reportf(b.call.Pos(), "operator body mixes row-wise %s with bulk %s on the same PartitionSink handle; a morsel must be emitted entirely row-wise or entirely as ranges", rowName(a, b), rangeName(a, b))
				}
			}
		}
	}
}

func rowName(a, b *emitCall) string {
	if !a.sig.isRange {
		return a.name
	}
	return b.name
}

func rangeName(a, b *emitCall) string {
	if a.sig.isRange {
		return a.name
	}
	return b.name
}

// checkInduction verifies the id discipline of emissions inside loops:
// row-wise out-ids must be monotone-or-invariant in every enclosing loop;
// range bases must be strictly advancing (monotone with at least one in-loop
// write — an invariant base re-emits the same id range every iteration).
func checkInduction(pass *analysis.Pass, body *ast.BlockStmt, info *types.Info, emits []emitCall) {
	for i := range emits {
		em := &emits[i]
		loops := dataflow.EnclosingLoops(body, em.call)
		if len(loops) == 0 {
			continue
		}
		idArg := ast.Unparen(em.call.Args[em.sig.idArg])
		v, derivable := inductionBase(idArg, info)
		if !derivable {
			pass.Reportf(idArg.Pos(), "%s id argument is not derivable from loop induction (want a plain identifier, a constant, or ident+constant); emitted ids must be reconstructible per morsel", em.name)
			continue
		}
		if v == nil {
			// Constant argument: invariant. Fine for row-wise, a re-emission
			// bug for range forms.
			if em.sig.isRange {
				pass.Reportf(idArg.Pos(), "%s inside a loop with a constant base re-emits the same id range every iteration; advance the base per iteration or hoist the call per morsel", em.name)
			}
			continue
		}
		for _, loop := range loops {
			if !dataflow.MonotoneInLoop(v, loop, info) {
				pass.Reportf(idArg.Pos(), "%s id argument %s is not monotone in an enclosing loop; ids must advance with the loop induction so ranges stay contiguous", em.name, v.Name())
				break
			}
		}
		if em.sig.isRange {
			innermost := loops[len(loops)-1]
			if dataflow.InvariantInLoop(v, innermost, info) {
				pass.Reportf(idArg.Pos(), "%s inside a loop with loop-invariant base %s re-emits the same id range every iteration; advance the base or hoist the call per morsel", em.name, v.Name())
			}
		}
	}
}

// inductionBase reduces an id argument to its base variable: a plain ident,
// a constant (nil var), or ident ± constant. Anything else is not derivable.
func inductionBase(e ast.Expr, info *types.Info) (*types.Var, bool) {
	e = ast.Unparen(e)
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return nil, true // constant
	}
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v, true
		}
	case *ast.CallExpr:
		// A conversion like int64(i) keeps the base derivable.
		if len(e.Args) == 1 {
			if _, isConv := info.Types[e.Fun]; isConv && info.Types[e.Fun].IsType() {
				return inductionBase(e.Args[0], info)
			}
		}
	case *ast.BinaryExpr:
		xv, xok := inductionBase(e.X, info)
		yv, yok := inductionBase(e.Y, info)
		if !xok || !yok {
			return nil, false
		}
		if xv != nil && yv != nil {
			return nil, false // two variables: not a simple induction form
		}
		if xv != nil {
			return xv, true
		}
		return yv, true
	}
	return nil, false
}

// checkPartitionHoisting flags Partition calls inside a loop that also emits:
// the handle lookup belongs before the loop, once per morsel.
func checkPartitionHoisting(pass *analysis.Pass, body *ast.BlockStmt, partitions []*ast.CallExpr, emits []emitCall) {
	for _, call := range partitions {
		for _, loop := range dataflow.EnclosingLoops(body, call) {
			if loopEmits(loop, emits) {
				pass.Reportf(call.Pos(), "Partition called inside an emission loop; hoist the handle out of the loop — the contract is one registry lookup per morsel")
				break
			}
		}
	}
}

func loopEmits(loop ast.Stmt, emits []emitCall) bool {
	for i := range emits {
		if emits[i].call.Pos() >= loop.Pos() && emits[i].call.End() <= loop.End() {
			return true
		}
	}
	return false
}

func returnsPartitionSink(info *types.Info, sel *ast.SelectorExpr) bool {
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	named, ok := sig.Results().At(0).Type().(*types.Named)
	return ok && named.Obj().Name() == "PartitionSink"
}

func rootVar(e ast.Expr, info *types.Info) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, _ := info.Uses[x].(*types.Var)
			return v
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}
