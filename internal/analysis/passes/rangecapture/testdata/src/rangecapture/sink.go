package rangecapture

// PartitionSink is a fixture double of the engine's morsel emission handle.
// The analyzer recognizes emissions structurally — by method name and arity
// on a sink-shaped receiver (one with both a row-wise and a range method) —
// so this double is checked exactly like engine.PartitionSink.
type PartitionSink struct {
	emitted int
}

func (PartitionSink) SourceRow(id, orig int64)                       {}
func (PartitionSink) Unary(in, out int64)                            {}
func (PartitionSink) Binary(l, r, out int64)                         {}
func (PartitionSink) Flatten(in int64, pos int, out int64)           {}
func (PartitionSink) Agg(in []int64, out int64)                      {}
func (PartitionSink) SourceRows(base int64, origs []int64)           {}
func (PartitionSink) UnaryRange(in []int64, base int64)              {}
func (PartitionSink) BinaryRange(l, r []int64, base int64)           {}
func (PartitionSink) FlattenRange(in []int64, pos []int, base int64) {}

// Registry hands out per-partition sinks; Partition must be hoisted out of
// emission loops.
type Registry struct{}

func (Registry) Partition(op, part int) PartitionSink { return PartitionSink{} }
