// Fixture for the rangecapture analyzer: the PartitionSink morsel contract.
// The sink type itself is defined in sink.go (cross-file reference).
package rangecapture

func mixedForms(s PartitionSink, ids []int64) {
	s.UnaryRange(ids, 0)
	s.Unary(ids[0], 1) // want `mixes row-wise Unary with bulk UnaryRange`
}

func mixedRowThenRange(s PartitionSink, ids []int64) {
	s.SourceRow(1, 1)
	s.SourceRows(2, ids) // want `mixes row-wise SourceRow with bulk SourceRows`
}

func shrinkingID(s PartitionSink, rows []int) {
	id := int64(100)
	for range rows {
		s.Unary(7, id) // want `id argument id is not monotone in an enclosing loop`
		id--
	}
}

func opaqueID(s PartitionSink, rows []int, ids []int64) {
	for i := range rows {
		s.Unary(int64(i), ids[i]) // want `id argument is not derivable from loop induction`
	}
}

func constantRangeBase(s PartitionSink, batches [][]int64) {
	for _, b := range batches {
		s.UnaryRange(b, 0) // want `constant base re-emits the same id range`
	}
}

func invariantRangeBase(s PartitionSink, batches [][]int64) {
	base := int64(0)
	for _, b := range batches {
		s.UnaryRange(b, base) // want `loop-invariant base base re-emits the same id range`
	}
}

func partitionInLoop(r Registry, rows []int) {
	out := int64(0)
	for range rows {
		s := r.Partition(1, 0) // want `Partition called inside an emission loop`
		s.Unary(9, out)
		out++
	}
}

// cleanRowWise: out-ids advance with an explicit counter, monotone in the
// loop — the reconstructible per-morsel discipline.
func cleanRowWise(s PartitionSink, rows []int) {
	out := int64(0)
	for range rows {
		s.Unary(3, out)
		out++
	}
}

// cleanRangeStride: the base advances by a constant stride every iteration,
// so consecutive ranges stay contiguous and are emitted exactly once.
func cleanRangeStride(s PartitionSink, morsels [][]int64, ids []int64) {
	base := int64(0)
	for range morsels {
		s.UnaryRange(ids, base)
		base += 64
	}
}

// cleanHoisted: the handle lookup happens once, before the emission loop.
func cleanHoisted(r Registry, rows []int) {
	s := r.Partition(1, 0)
	out := int64(0)
	for range rows {
		s.SourceRow(out, out)
		out++
	}
}

// cleanAllRange: an operator body that is entirely bulk never mixes forms.
func cleanAllRange(s PartitionSink, ids []int64) {
	s.UnaryRange(ids, 0)
	s.SourceRows(0, ids)
}

// cleanAggGroups mirrors the vectorized aggregate kernel (DESIGN.md §13):
// one Agg emission per group in sort order, the out-id advancing with the
// loop, the in-ids a CSR subslice whose ownership transfers to the sink.
func cleanAggGroups(s PartitionSink, order []int, idsArena []int64, offsets []int32, base int64) {
	id := base
	for _, g := range order {
		s.Agg(idsArena[offsets[g]:offsets[g+1]], id)
		id++
	}
}

// aggShrinkingID walks the group ids backwards — out-ids must advance with
// the emission order or the serialized stream reorders across schedules.
func aggShrinkingID(s PartitionSink, order []int, ids []int64, base int64) {
	id := base
	for range order {
		s.Agg(ids, id) // want `id argument id is not monotone in an enclosing loop`
		id--
	}
}
