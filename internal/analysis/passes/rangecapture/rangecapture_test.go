package rangecapture_test

import (
	"testing"

	"pebble/internal/analysis/analysistest"
	"pebble/internal/analysis/passes/rangecapture"
)

func TestRangeCapture(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), rangecapture.Analyzer, "rangecapture")
}
