// Package analysistest runs an analyzer over fixture packages and checks its
// diagnostics against expectations written in the fixtures themselves,
// mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	testdata/src/<pkg>/*.go      fixture packages, imported by path <pkg>
//	for k := range m { ... }     // want `regexp matching the diagnostic`
//
// A `// want` comment may carry several quoted regexps (Go string or
// backquote syntax); each must be matched by a distinct diagnostic on that
// line, and every diagnostic must match some expectation. Fixture imports
// resolve first against sibling fixture packages (typechecked from source),
// then against the standard library via export data obtained from one
// `go list -export -deps -json` invocation — no network, no go/packages.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"pebble/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	testdata, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return testdata
}

// Run analyzes each fixture package (an import path under dir/src) with a
// and reports expectation mismatches through t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	RunAll(t, dir, []*analysis.Analyzer{a}, pkgs...)
}

// RunAll analyzes each fixture package with a set of analyzers in one driver
// run. Whole-run diagnostics (the staleignore pseudo-analyzer) only exist in
// this shape: staleness is decided after every real analyzer has reported.
func RunAll(t *testing.T, dir string, analyzers []*analysis.Analyzer, pkgs ...string) {
	t.Helper()
	l := &loader{
		srcRoot: filepath.Join(dir, "src"),
		fset:    token.NewFileSet(),
		local:   make(map[string]*localPkg),
		exports: make(map[string]string),
	}
	for _, pkg := range pkgs {
		lp, err := l.load(pkg)
		if err != nil {
			t.Errorf("loading fixture package %s: %v", pkg, err)
			continue
		}
		unit := &analysis.Unit{Fset: l.fset, Files: lp.files, Pkg: lp.pkg, Info: lp.info}
		findings, err := analysis.RunAnalyzers(unit, analyzers)
		if err != nil {
			t.Errorf("running analyzers on %s: %v", pkg, err)
			continue
		}
		checkExpectations(t, l.fset, lp.files, findings)
	}
}

type localPkg struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

type loader struct {
	srcRoot string
	fset    *token.FileSet
	local   map[string]*localPkg
	exports map[string]string // import path -> export data file (from go list)
	listed  bool
}

func (l *loader) load(path string) (*localPkg, error) {
	if lp, ok := l.local[path]; ok {
		if lp == nil {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
		return lp, nil
	}
	dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	l.local[path] = nil // cycle marker
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	tc := &types.Config{Importer: importerFunc(l.importPkg)}
	info := analysis.NewInfo()
	pkg, err := tc.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	lp := &localPkg{files: files, pkg: pkg, info: info}
	l.local[path] = lp
	return lp, nil
}

func (l *loader) importPkg(path string) (*types.Package, error) {
	if st, err := os.Stat(filepath.Join(l.srcRoot, filepath.FromSlash(path))); err == nil && st.IsDir() {
		lp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	if !l.listed {
		if err := l.listExports(); err != nil {
			return nil, err
		}
		l.listed = true
	}
	imp := importer.ForCompiler(l.fset, "gc", func(p string) (io.ReadCloser, error) {
		file, ok := l.exports[p]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", p)
		}
		return os.Open(file)
	})
	return imp.Import(path)
}

// listExports resolves every non-fixture import reachable from the fixture
// tree to its compiled export data, with a single go list invocation.
func (l *loader) listExports() error {
	seen := make(map[string]bool)
	var wanted []string
	err := filepath.WalkDir(l.srcRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".go") {
			return err
		}
		f, err := parser.ParseFile(token.NewFileSet(), p, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			ipath, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if st, err := os.Stat(filepath.Join(l.srcRoot, filepath.FromSlash(ipath))); err == nil && st.IsDir() {
				continue // fixture-local, typechecked from source
			}
			if !seen[ipath] {
				seen[ipath] = true
				wanted = append(wanted, ipath)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if len(wanted) == 0 {
		return nil
	}
	sort.Strings(wanted)
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, wanted...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.srcRoot
	var out, stderr bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go list -export: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(&out)
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	return nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// expectation is one quoted regexp of a want comment.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

var wantRe = regexp.MustCompile(`//\s*want\s(.*)$`)

func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, findings []analysis.Finding) {
	t.Helper()
	var expects []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := fset.Position(c.Pos())
				rest := strings.TrimSpace(m[1])
				for rest != "" {
					lit, remaining, err := nextString(rest)
					if err != nil {
						t.Errorf("%s: bad want comment: %v", posn, err)
						break
					}
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", posn, lit, err)
						break
					}
					expects = append(expects, &expectation{file: posn.Filename, line: posn.Line, re: re})
					rest = strings.TrimSpace(remaining)
				}
			}
		}
	}
	for _, f := range findings {
		posn := fset.Position(f.Diagnostic.Pos)
		matched := false
		for _, e := range expects {
			if !e.used && e.file == posn.Filename && e.line == posn.Line && e.re.MatchString(f.Diagnostic.Message) {
				e.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", posn, f.Diagnostic.Message)
		}
	}
	for _, e := range expects {
		if !e.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}

// nextString pops one leading Go string literal (quoted or backquoted) off s.
func nextString(s string) (lit, rest string, err error) {
	switch s[0] {
	case '`':
		end := strings.IndexByte(s[1:], '`')
		if end < 0 {
			return "", "", fmt.Errorf("unterminated backquoted string")
		}
		return s[1 : 1+end], s[end+2:], nil
	case '"':
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				lit, err := strconv.Unquote(s[:i+1])
				return lit, s[i+1:], err
			}
		}
		return "", "", fmt.Errorf("unterminated quoted string")
	}
	return "", "", fmt.Errorf("expected string literal, found %q", s)
}
