package analysis_test

import (
	"testing"

	"pebble/internal/analysis"
	"pebble/internal/analysis/analysistest"
	"pebble/internal/analysis/passes/determinism"
)

// TestStaleIgnore drives a real analyzer and the staleignore pseudo-analyzer
// in one run: a directive that suppresses a live determinism finding is
// quiet, directives covering lines the analyzer says nothing about are
// reported in both placements (standalone and trailing), and directives
// naming analyzers outside the run are left alone.
func TestStaleIgnore(t *testing.T) {
	analysistest.RunAll(t, analysistest.TestData(),
		[]*analysis.Analyzer{determinism.Analyzer, analysis.StaleIgnore}, "staleignore")
}
