// Package unitchecker implements the command-line protocol that `go vet
// -vettool=...` speaks to an analysis tool, for the analyzers of
// internal/analysis. It mirrors the contract of
// golang.org/x/tools/go/analysis/unitchecker (which this repo cannot vendor
// offline):
//
//	tool -V=full        print a version line the build system can cache on
//	tool -flags         describe supported flags in JSON
//	tool [flags] x.cfg  analyze the one compilation unit described by x.cfg
//
// The cfg file is JSON written by the go command; it names the unit's Go
// files and maps every import to the export data the compiler already
// produced, so analysis needs no go/packages-style loader: parse, typecheck
// against export data, run the analyzers, print findings.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"pebble/internal/analysis"
)

// Config is the JSON compilation-unit description the go command hands to a
// vettool. Field set and meaning follow the upstream protocol.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// triState distinguishes an unset analyzer-enable flag from an explicit
// true/false, matching go vet's per-analyzer flag semantics: any flag set to
// true selects exactly those analyzers; otherwise false flags deselect.
type triState int

const (
	unset triState = iota
	setTrue
	setFalse
)

func (ts *triState) IsBoolFlag() bool { return true }
func (ts *triState) Get() interface{} { return *ts == setTrue }
func (ts *triState) String() string {
	if *ts == setFalse {
		return "false"
	}
	return "true"
}
func (ts *triState) Set(value string) error {
	b, err := strconv.ParseBool(value)
	if err != nil {
		return fmt.Errorf("want true or false")
	}
	if b {
		*ts = setTrue
	} else {
		*ts = setFalse
	}
	return nil
}

// versionFlag implements -V=full: print a line the go command can use as the
// tool's build ID (content hash of the executable).
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) Get() interface{} { return nil }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	progname, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(progname)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel buildID=%02x\n", progname, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}

// Main is the entry point of a vettool built on this package.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	if err := analysis.Validate(analyzers); err != nil {
		log.Fatal(err)
	}

	printflags := flag.Bool("flags", false, "print analyzer flags in JSON")
	jsonOut := flag.Bool("json", false, "emit JSON output")
	_ = flag.Int("c", -1, "display offending line with this many lines of context")
	flag.Var(versionFlag{}, "V", "print version and exit")

	enabled := make(map[*analysis.Analyzer]*triState, len(analyzers))
	for _, a := range analyzers {
		a := a
		ts := new(triState)
		enabled[a] = ts
		flag.Var(ts, a.Name, "enable "+a.Name+" analysis")
		prefix := a.Name + "."
		a.Flags.VisitAll(func(f *flag.Flag) {
			flag.Var(f.Value, prefix+f.Name, f.Usage)
		})
	}

	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "%s: static-analysis suite for the pebble repo; invoke via go vet -vettool=%s\n", progname, progname)
		os.Exit(1)
	}
	flag.Parse()

	if *printflags {
		printFlags()
		os.Exit(0)
	}

	args := flag.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		flag.Usage()
	}

	// Apply -NAME / -NAME=false selection.
	var hasTrue, hasFalse bool
	for _, a := range analyzers {
		switch *enabled[a] {
		case setTrue:
			hasTrue = true
		case setFalse:
			hasFalse = true
		}
	}
	if hasTrue || hasFalse {
		keep := analyzers[:0:0]
		for _, a := range analyzers {
			ts := *enabled[a]
			if hasTrue && ts == setTrue || !hasTrue && ts != setFalse {
				keep = append(keep, a)
			}
		}
		analyzers = keep
	}

	run(args[0], analyzers, *jsonOut)
}

func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

func run(configFile string, analyzers []*analysis.Analyzer, jsonOut bool) {
	data, err := os.ReadFile(configFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode JSON config file %s: %v", configFile, err)
	}
	if len(cfg.GoFiles) == 0 {
		log.Fatalf("package has no files: %s", cfg.ImportPath)
	}

	// The go command asks for a facts file even from tools without facts;
	// writing it (empty — the suite's analyzers are package-local) keeps the
	// vet result cacheable.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				log.Fatalf("failed to write facts file: %v", err)
			}
		}
	}

	// Dependency units are analyzed only for facts; with a fact-free suite
	// they are no-ops.
	if cfg.VetxOnly {
		writeVetx()
		os.Exit(0)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				os.Exit(0)
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return compilerImporter.Import(path)
		}),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := analysis.NewInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			os.Exit(0)
		}
		log.Fatal(err)
	}

	unit := &analysis.Unit{Fset: fset, Files: files, Pkg: pkg, Info: info}
	findings, err := analysis.RunAnalyzers(unit, analyzers)
	if err != nil {
		log.Fatal(err)
	}
	writeVetx()

	if jsonOut {
		printJSON(fset, cfg.ID, analyzers, findings)
		os.Exit(0)
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%v: %s\n", fset.Position(f.Diagnostic.Pos), f.Diagnostic.Message)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}

// printJSON emits the nested {package: {analyzer: [diagnostics]}} shape the
// upstream drivers use, which `go vet -json` aggregates across units.
func printJSON(fset *token.FileSet, id string, analyzers []*analysis.Analyzer, findings []analysis.Finding) {
	type jsonDiagnostic struct {
		Category string `json:"category,omitempty"`
		Posn     string `json:"posn"`
		Message  string `json:"message"`
	}
	byAnalyzer := make(map[string][]jsonDiagnostic)
	for _, f := range findings {
		byAnalyzer[f.Analyzer.Name] = append(byAnalyzer[f.Analyzer.Name], jsonDiagnostic{
			Category: f.Diagnostic.Category,
			Posn:     fset.Position(f.Diagnostic.Pos).String(),
			Message:  f.Diagnostic.Message,
		})
	}
	tree := map[string]map[string][]jsonDiagnostic{id: byAnalyzer}
	data, err := json.MarshalIndent(tree, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
