package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The suite supports a narrow, audited escape hatch: a comment of the form
//
//	//pebblevet:ignore name1,name2 -- reason
//
// on (or immediately above) the offending line suppresses diagnostics of the
// named analyzers for that line. The reason is mandatory by convention —
// check.sh reviewers treat a bare ignore as a finding in itself — but the
// parser only requires the analyzer list. Directives are deliberately
// line-scoped: there is no file- or package-level opt-out, so every accepted
// nondeterminism or discarded error stays visible at its use site.

const ignorePrefix = "//pebblevet:ignore"

// ignoredLines returns, per file line, the set of analyzer names suppressed
// on that line. A directive suppresses its own line and, when it is the only
// thing on its line, the line below (comment-above style).
func ignoredLines(fset *token.FileSet, file *ast.File) map[int]map[string]bool {
	var out map[int]map[string]bool
	add := func(line int, names []string) {
		if out == nil {
			out = make(map[int]map[string]bool)
		}
		m := out[line]
		if m == nil {
			m = make(map[string]bool)
			out[line] = m
		}
		for _, n := range names {
			m[n] = true
		}
	}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, ignorePrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //pebblevet:ignorefoo
			}
			if i := strings.Index(rest, "--"); i >= 0 {
				rest = rest[:i]
			}
			var names []string
			for _, f := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
				if f != "" {
					names = append(names, f)
				}
			}
			if len(names) == 0 {
				continue
			}
			pos := fset.Position(c.Pos())
			// Cover the directive's own line (trailing-comment style) and the
			// line below (comment-above style). A trailing directive thus also
			// covers the next line; that is harmless — suppression is opt-in
			// per analyzer and reviewed in diffs.
			add(pos.Line, names)
			add(pos.Line+1, names)
		}
	}
	return out
}

// Suppressed reports whether a diagnostic of the named analyzer at pos is
// silenced by a //pebblevet:ignore directive.
func Suppressed(fset *token.FileSet, files []*ast.File, name string, pos token.Pos) bool {
	tf := fset.File(pos)
	if tf == nil {
		return false
	}
	for _, f := range files {
		if fset.File(f.Pos()) != tf {
			continue
		}
		byLine := ignoredLines(fset, f)
		if m := byLine[fset.Position(pos).Line]; m != nil && m[name] {
			return true
		}
	}
	return false
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// The suite's analyzers enforce production-code invariants; tests may, for
// example, iterate expectation maps or discard errors deliberately.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	tf := fset.File(pos)
	return tf != nil && strings.HasSuffix(tf.Name(), "_test.go")
}
