package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// The suite supports a narrow, audited escape hatch: a comment of the form
//
//	//pebblevet:ignore name1,name2 -- reason
//
// suppresses diagnostics of the named analyzers. Placement decides scope
// precisely: a trailing directive (code precedes it on the same line) covers
// its own line only; a standalone directive (alone on its line) covers the
// line directly below. The reason is mandatory by convention — check.sh
// reviewers treat a bare ignore as a finding in itself — but the parser only
// requires the analyzer list. Directives are deliberately line-scoped: there
// is no file- or package-level opt-out, so every accepted nondeterminism or
// discarded error stays visible at its use site.
//
// Directives are also audited for staleness: the driver tracks which
// directives actually suppressed a diagnostic, and the staleignore
// pseudo-analyzer reports any directive naming an analyzer that ran but
// found nothing on the covered line — a stale ignore hides nothing and
// misleads readers into thinking the line is exempt.

const ignorePrefix = "//pebblevet:ignore"

// StaleIgnore is the driver-level staleness check, exposed as an analyzer so
// the unitchecker protocol (per-analyzer enable flags, -staleignore) and the
// suite listing treat it uniformly. Its Run is a no-op: RunAnalyzers itself
// emits the findings after every real analyzer has reported, since staleness
// is a property of the whole run, not of one pass.
var StaleIgnore = &Analyzer{
	Name: "staleignore",
	Doc: `report //pebblevet:ignore directives that no longer suppress any finding

A directive naming an analyzer that ran on the package but produced no
diagnostic on the covered line is stale: it documents an exemption that does
not exist. Remove it, or narrow its analyzer list.`,
	Run: func(*Pass) (interface{}, error) { return nil, nil },
}

// A directive is one parsed //pebblevet:ignore comment.
type directive struct {
	names       []string
	pos         token.Pos // comment position, for staleness reporting
	coveredLine int       // the single line the directive suppresses
	testFile    bool
	hits        map[string]bool // analyzer names that suppressed a diagnostic
}

// A Suppressor holds every ignore directive of one analysis unit and records
// which of them actually fire, enabling the staleness report.
type Suppressor struct {
	fset *token.FileSet
	// byFile maps each token.File to its directives indexed by covered line.
	byFile map[*token.File]map[int][]*directive
	all    []*directive
}

// NewSuppressor parses the ignore directives of the unit's files. A
// directive's scope depends on placement: trailing (code starts earlier on
// the same line) covers its own line; standalone covers the next line.
func NewSuppressor(fset *token.FileSet, files []*ast.File) *Suppressor {
	s := &Suppressor{fset: fset, byFile: make(map[*token.File]map[int][]*directive)}
	for _, f := range files {
		tf := fset.File(f.Pos())
		if tf == nil {
			continue
		}
		codeLines := codeStartLines(fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names := parseIgnore(c.Text)
				if len(names) == 0 {
					continue
				}
				posn := fset.Position(c.Pos())
				covered := posn.Line + 1 // standalone: the line below
				if codeLines[posn.Line] {
					covered = posn.Line // trailing: its own line
				}
				d := &directive{
					names:       names,
					pos:         c.Pos(),
					coveredLine: covered,
					testFile:    IsTestFile(fset, c.Pos()),
					hits:        make(map[string]bool),
				}
				m := s.byFile[tf]
				if m == nil {
					m = make(map[int][]*directive)
					s.byFile[tf] = m
				}
				m[covered] = append(m[covered], d)
				s.all = append(s.all, d)
			}
		}
	}
	return s
}

// Suppressed reports whether a diagnostic of the named analyzer at pos is
// silenced, and records the hit for the staleness report.
func (s *Suppressor) Suppressed(name string, pos token.Pos) bool {
	tf := s.fset.File(pos)
	if tf == nil {
		return false
	}
	line := s.fset.Position(pos).Line
	hit := false
	for _, d := range s.byFile[tf][line] {
		for _, n := range d.names {
			if n == name {
				d.hits[name] = true
				hit = true
			}
		}
	}
	return hit
}

// Stale returns one diagnostic per (directive, name) pair where the named
// analyzer ran but the directive never suppressed one of its diagnostics.
// Directives in _test.go files are exempt, matching the analyzers themselves.
func (s *Suppressor) Stale(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range s.all {
		if d.testFile {
			continue
		}
		for _, n := range d.names {
			if ran[n] && !d.hits[n] {
				out = append(out, Diagnostic{
					Pos:     d.pos,
					Message: fmt.Sprintf("stale //pebblevet:ignore %s: the %s analyzer reports nothing on the covered line; remove the directive or narrow its list", n, n),
				})
			}
		}
	}
	return out
}

// parseIgnore extracts the analyzer names of an ignore directive, or nil.
func parseIgnore(text string) []string {
	if !strings.HasPrefix(text, ignorePrefix) {
		return nil
	}
	rest := strings.TrimPrefix(text, ignorePrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil // e.g. //pebblevet:ignorefoo
	}
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = rest[:i]
	}
	var names []string
	for _, f := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		if f != "" {
			names = append(names, f)
		}
	}
	return names
}

// codeStartLines returns the set of lines on which some AST node (i.e. code,
// not only a comment) begins. Used to classify a directive as trailing.
func codeStartLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup, *ast.File:
			return true
		}
		lines[fset.Position(n.Pos()).Line] = true
		return true
	})
	return lines
}

// Suppressed reports whether a diagnostic of the named analyzer at pos is
// silenced by a //pebblevet:ignore directive. Standalone wrapper for callers
// without a Suppressor; hit tracking is discarded.
func Suppressed(fset *token.FileSet, files []*ast.File, name string, pos token.Pos) bool {
	return NewSuppressor(fset, files).Suppressed(name, pos)
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// The suite's analyzers enforce production-code invariants; tests may, for
// example, iterate expectation maps or discard errors deliberately.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	tf := fset.File(pos)
	return tf != nil && strings.HasSuffix(tf.Name(), "_test.go")
}
