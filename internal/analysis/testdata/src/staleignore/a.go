// Fixture for the staleignore pseudo-analyzer, driven together with the
// determinism analyzer in one RunAll invocation. A want expectation for a
// stale directive rides inside the directive comment itself: the directive
// parser cuts the analyzer list at "--", and the expectation scanner matches
// the trailing "// want" anywhere in the comment text.
package staleignore

// working: the trailing directive suppresses a real determinism finding on
// its own line, so it has a hit and is not stale.
func working(m map[string]string) string {
	s := ""
	for _, v := range m { //pebblevet:ignore determinism -- fixture: concat order accepted here
		s += v
	}
	return s
}

// staleStandalone: the directive covers the line below it, where determinism
// reports nothing.
func staleStandalone() int {
	x := 1
	//pebblevet:ignore determinism -- fixture: nothing below ranges a map // want `stale //pebblevet:ignore determinism`
	x++
	return x
}

// staleTrailing: same staleness, trailing placement — the covered line is the
// directive's own.
func staleTrailing() int {
	y := 2 //pebblevet:ignore determinism -- fixture: stale trailing directive // want `stale //pebblevet:ignore determinism`
	return y
}

// notRun: a directive naming an analyzer that is not part of this driver run
// is not reported — staleness is only decidable for analyzers that ran.
func notRun() {
	//pebblevet:ignore lockcheck -- lockcheck is not in this test's run
	_ = 0
}
