package dataflow

import "go/ast"

// OwnExprs returns the expressions evaluated at a statement's own CFG node —
// for compound statements, only the header parts (init/condition/tag/range
// operand), since the nested bodies have nodes of their own. Analyzers use
// this to attribute expression evaluation to the right program point without
// double-visiting nested statements.
func OwnExprs(s ast.Stmt) []ast.Expr {
	var out []ast.Expr
	switch s := s.(type) {
	case *ast.AssignStmt:
		out = append(out, s.Rhs...)
		out = append(out, s.Lhs...)
	case *ast.ExprStmt:
		out = append(out, s.X)
	case *ast.ReturnStmt:
		out = append(out, s.Results...)
	case *ast.IfStmt:
		if s.Init != nil {
			out = append(out, OwnExprs(s.Init)...)
		}
		out = append(out, s.Cond)
	case *ast.ForStmt:
		if s.Init != nil {
			out = append(out, OwnExprs(s.Init)...)
		}
		if s.Cond != nil {
			out = append(out, s.Cond)
		}
	case *ast.RangeStmt:
		out = append(out, s.X)
	case *ast.SwitchStmt:
		if s.Init != nil {
			out = append(out, OwnExprs(s.Init)...)
		}
		if s.Tag != nil {
			out = append(out, s.Tag)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			out = append(out, OwnExprs(s.Init)...)
		}
		out = append(out, OwnExprs(s.Assign)...)
	case *ast.CaseClause:
		out = append(out, s.List...)
	case *ast.CommClause:
		if s.Comm != nil {
			out = append(out, OwnExprs(s.Comm)...)
		}
	case *ast.SendStmt:
		out = append(out, s.Chan, s.Value)
	case *ast.IncDecStmt:
		out = append(out, s.X)
	case *ast.GoStmt:
		out = append(out, s.Call)
	case *ast.DeferStmt:
		out = append(out, s.Call)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					out = append(out, vs.Values...)
				}
			}
		}
	case *ast.LabeledStmt:
		out = append(out, OwnExprs(s.Stmt)...)
	}
	return out
}

// EnclosingLoops returns the for/range statements lexically enclosing pos
// within body, outermost first. A FuncLit between a loop and pos breaks the
// chain: the outer loop does not iterate the closure's statements directly.
func EnclosingLoops(body *ast.BlockStmt, pos ast.Node) []ast.Stmt {
	var loops []ast.Stmt
	target := pos.Pos()
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() > target || n.End() <= target {
			return false // does not contain the target
		}
		switch n := n.(type) {
		case *ast.ForStmt:
			if n != pos {
				loops = append(loops, n)
			}
		case *ast.RangeStmt:
			if n != pos {
				loops = append(loops, n)
			}
		case *ast.FuncLit:
			loops = loops[:0]
		}
		return true
	})
	return loops
}
