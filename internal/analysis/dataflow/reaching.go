package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A Def is one definition (write) of a variable at a CFG node. Rhs is the
// defining expression when syntactically evident (the matching right-hand
// side of an assignment, a ValueSpec initializer); nil for entry defs,
// IncDecStmt, range-clause variables, and multi-value assignments where no
// single expression corresponds (x, y := f()  — Rhs is the call for both).
type Def struct {
	ID   int
	Obj  *types.Var
	Node *Node    // nil for synthetic entry definitions (params, free vars)
	Rhs  ast.Expr // defining expression, if any
	// Call is set when the definition's value comes from a (possibly
	// multi-result) call: x := f() or x, y := f().
	Call *ast.CallExpr
}

// Reaching holds the reaching-definitions solution of one function graph.
type Reaching struct {
	Graph *Graph
	Info  *types.Info
	Defs  []*Def
	// DefsOf indexes definitions by variable.
	DefsOf map[*types.Var][]*Def
	// In[n.Index] is the bitset of definition IDs reaching the entry of node n.
	In []bitset
	// defsAt[n.Index] lists the definitions generated at node n.
	defsAt [][]*Def
}

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (uint(i) % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

func (b bitset) orInto(src bitset) bool {
	changed := false
	for i, w := range src {
		if b[i]|w != b[i] {
			b[i] |= w
			changed = true
		}
	}
	return changed
}

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

// NewReaching builds the graph of fn's body and solves reaching definitions
// over it. Entry definitions are synthesized for parameters, named results,
// and the receiver. Variables declared outside the function but assigned
// inside (free variables of closures) get an entry def too, so reads before
// the first inner write see a definition.
func NewReaching(fn *ast.FuncDecl, info *types.Info) *Reaching {
	var recv, params *ast.FieldList
	if fn.Recv != nil {
		recv = fn.Recv
	}
	params = fn.Type.Params
	return solveReaching(New(fn.Body), fn.Body, recv, params, fn.Type.Results, info)
}

// NewReachingLit is NewReaching for a function literal.
func NewReachingLit(fn *ast.FuncLit, info *types.Info) *Reaching {
	return solveReaching(New(fn.Body), fn.Body, nil, fn.Type.Params, fn.Type.Results, info)
}

func solveReaching(g *Graph, body *ast.BlockStmt, recv, params, results *ast.FieldList, info *types.Info) *Reaching {
	r := &Reaching{
		Graph:  g,
		Info:   info,
		DefsOf: make(map[*types.Var][]*Def),
		defsAt: make([][]*Def, len(g.Nodes)),
	}

	addDef := func(obj *types.Var, n *Node, rhs ast.Expr, call *ast.CallExpr) {
		d := &Def{ID: len(r.Defs), Obj: obj, Node: n, Rhs: rhs, Call: call}
		r.Defs = append(r.Defs, d)
		r.DefsOf[obj] = append(r.DefsOf[obj], d)
		if n != nil {
			r.defsAt[n.Index] = append(r.defsAt[n.Index], d)
		}
	}
	entryDef := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					addDef(v, nil, nil, nil)
				}
			}
		}
	}
	entryDef(recv)
	entryDef(params)
	entryDef(results)

	// Collect defs generated at each node.
	for _, n := range g.Nodes {
		if n.Stmt == nil {
			continue
		}
		collectDefs(n, info, addDef)
	}

	// Variables written inside the body whose declaration lies outside it
	// (closure free variables): give them an entry def so reads before any
	// inner write are not def-free. Iterate in declaration order so Def IDs
	// are deterministic across runs.
	declared := make(map[*types.Var]bool)
	ast.Inspect(body, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok {
			if v, ok := info.Defs[id].(*types.Var); ok {
				declared[v] = true
			}
		}
		return true
	})
	var free []*types.Var
	for v, defs := range r.DefsOf { //pebblevet:ignore determinism -- collected into free and sorted by Pos below
		if declared[v] {
			continue
		}
		hasEntry := false
		for _, d := range defs {
			if d.Node == nil {
				hasEntry = true
			}
		}
		if !hasEntry {
			free = append(free, v)
		}
	}
	sort.Slice(free, func(i, j int) bool { return free[i].Pos() < free[j].Pos() })
	for _, v := range free {
		addDef(v, nil, nil, nil)
	}

	r.solve()
	return r
}

// collectDefs reports the definitions a single CFG node generates.
func collectDefs(n *Node, info *types.Info, add func(*types.Var, *Node, ast.Expr, *ast.CallExpr)) {
	defIdent := func(e ast.Expr, rhs ast.Expr, call *ast.CallExpr) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		var v *types.Var
		if d, ok := info.Defs[id].(*types.Var); ok {
			v = d
		} else if u, ok := info.Uses[id].(*types.Var); ok {
			v = u
		}
		if v != nil {
			add(v, n, rhs, call)
		}
	}

	switch s := n.Stmt.(type) {
	case *ast.AssignStmt:
		// x, y = f(): every LHS defined by the call. x, y = a, b: pairwise.
		var call *ast.CallExpr
		if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
			call, _ = s.Rhs[0].(*ast.CallExpr)
		}
		for i, lhs := range s.Lhs {
			var rhs ast.Expr
			var c *ast.CallExpr
			if len(s.Rhs) == len(s.Lhs) {
				rhs = s.Rhs[i]
				c, _ = rhs.(*ast.CallExpr)
			} else {
				c = call
			}
			defIdent(lhs, rhs, c)
		}
	case *ast.IncDecStmt:
		defIdent(s.X, nil, nil)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				var call *ast.CallExpr
				if len(vs.Values) == 1 && len(vs.Names) > 1 {
					call, _ = vs.Values[0].(*ast.CallExpr)
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					var c *ast.CallExpr
					if len(vs.Values) == len(vs.Names) {
						rhs = vs.Values[i]
						c, _ = rhs.(*ast.CallExpr)
					} else {
						c = call
					}
					defIdent(name, rhs, c)
				}
			}
		}
	case *ast.RangeStmt:
		if s.Key != nil {
			defIdent(s.Key, nil, nil)
		}
		if s.Value != nil {
			defIdent(s.Value, nil, nil)
		}
	case *ast.TypeSwitchStmt:
		// `switch y := x.(type)` — y is implicitly declared per clause; the
		// clause nodes carry the implicit object.
		if as, ok := s.Assign.(*ast.AssignStmt); ok && len(as.Lhs) == 1 {
			defIdent(as.Lhs[0], nil, nil)
		}
	case *ast.CaseClause:
		if v, ok := info.Implicits[s].(*types.Var); ok {
			add(v, n, nil, nil)
		}
	case *ast.IfStmt:
		collectInit(s.Init, n, info, add)
	case *ast.SwitchStmt:
		collectInit(s.Init, n, info, add)
	case *ast.ForStmt:
		collectInit(s.Init, n, info, add)
	}
}

func collectInit(init ast.Stmt, n *Node, info *types.Info, add func(*types.Var, *Node, ast.Expr, *ast.CallExpr)) {
	if init == nil {
		return
	}
	sub := &Node{Index: n.Index, Stmt: init}
	collectDefs(sub, info, func(v *types.Var, _ *Node, rhs ast.Expr, c *ast.CallExpr) {
		add(v, n, rhs, c)
	})
}

// solve runs the classic forward worklist: OUT(n) = gen(n) ∪ (IN(n) − kill(n));
// IN(n) = ∪ OUT(p). gen kills all other defs of the same variables.
func (r *Reaching) solve() {
	nd := len(r.Defs)
	g := r.Graph
	r.In = make([]bitset, len(g.Nodes))
	out := make([]bitset, len(g.Nodes))
	for i := range g.Nodes {
		r.In[i] = newBitset(nd)
		out[i] = newBitset(nd)
	}

	// Entry defs form OUT(entry).
	for _, d := range r.Defs {
		if d.Node == nil {
			out[g.Entry.Index].set(d.ID)
		}
	}

	transfer := func(n *Node) bitset {
		o := r.In[n.Index].clone()
		for _, d := range r.defsAt[n.Index] {
			// Kill all other defs of the same variable, then gen d.
			for _, k := range r.DefsOf[d.Obj] {
				o.clear(k.ID)
			}
		}
		for _, d := range r.defsAt[n.Index] {
			o.set(d.ID)
		}
		return o
	}

	work := make([]*Node, 0, len(g.Nodes))
	inWork := make([]bool, len(g.Nodes))
	push := func(n *Node) {
		if !inWork[n.Index] {
			inWork[n.Index] = true
			work = append(work, n)
		}
	}
	for _, n := range g.Nodes {
		push(n)
	}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		inWork[n.Index] = false
		for _, p := range n.Preds {
			r.In[n.Index].orInto(out[p.Index])
		}
		if n == g.Entry {
			continue // OUT(entry) is fixed
		}
		no := transfer(n)
		if !bitsetEq(no, out[n.Index]) {
			out[n.Index] = no
			for _, s := range n.Succs {
				push(s)
			}
		}
	}
}

func bitsetEq(a, b bitset) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// DefsAt returns the definitions generated at node n.
func (r *Reaching) DefsAt(n *Node) []*Def { return r.defsAt[n.Index] }

// ReachingAt returns the definitions of v reaching the entry of node n.
func (r *Reaching) ReachingAt(v *types.Var, n *Node) []*Def {
	var ds []*Def
	for _, d := range r.DefsOf[v] {
		if r.In[n.Index].has(d.ID) {
			ds = append(ds, d)
		}
	}
	return ds
}
