package dataflow

import (
	"go/ast"
	"go/types"
)

// TaintConfig configures a value-flow ("taint") analysis over a Reaching
// solution. The lattice per definition is boolean (tainted / untainted) and
// the fixpoint is monotone: once a definition taints it stays tainted.
type TaintConfig struct {
	// Source reports whether evaluating e (typically a call) produces a
	// tainted value directly.
	Source func(e ast.Expr) bool
	// Borrow, when non-nil, reports whether a call expression propagates
	// taint from its receiver/arguments to its result (e.g. a method that
	// returns an aliased view of a pooled buffer). By default call results
	// are untainted unless Source says otherwise.
	Borrow func(call *ast.CallExpr) bool
}

// Taint is the solved taint state over a Reaching solution.
type Taint struct {
	R       *Reaching
	cfg     TaintConfig
	tainted map[*Def]bool
}

// NewTaint runs the taint fixpoint: a definition is tainted if its defining
// expression is tainted given the definitions reaching its node. Entry defs
// and defs with no Rhs/Call are never tainted by the fixpoint itself (the
// caller can seed them via ExprTainted queries on specific program points).
func NewTaint(r *Reaching, cfg TaintConfig) *Taint {
	t := &Taint{R: r, cfg: cfg, tainted: make(map[*Def]bool)}
	t.resolve()
	return t
}

// DefTainted reports whether a specific definition is tainted.
func (t *Taint) DefTainted(d *Def) bool { return t.tainted[d] }

// MarkTainted seeds a definition as tainted. Callers must re-run Resolve
// afterwards to propagate.
func (t *Taint) MarkTainted(d *Def) {
	if !t.tainted[d] {
		t.tainted[d] = true
		t.resolve()
	}
}

func (t *Taint) resolve() {
	for changed := true; changed; {
		changed = false
		for _, d := range t.R.Defs {
			if t.tainted[d] || d.Node == nil {
				continue
			}
			var src ast.Expr
			if d.Rhs != nil {
				src = d.Rhs
			} else if d.Call != nil {
				src = d.Call
			} else {
				continue
			}
			if t.ExprTaintedAt(src, d.Node) {
				t.tainted[d] = true
				changed = true
			}
		}
	}
}

// VarTaintedAt reports whether any definition of v reaching node n is
// tainted (a may-analysis: one tainted path suffices).
func (t *Taint) VarTaintedAt(v *types.Var, n *Node) bool {
	for _, d := range t.R.ReachingAt(v, n) {
		if t.tainted[d] {
			return true
		}
	}
	return false
}

// ExprTaintedAt reports whether evaluating e at node n may yield a tainted
// value. Propagation rules (conservative, documented in DESIGN.md §11):
//
//   - a Source expression is tainted;
//   - an identifier is tainted if a tainted definition reaches n;
//   - parens, unary &/*, type assertions, and slice expressions propagate;
//   - composite literals are tainted if any element/value is (the aggregate
//     aliases the element for reference types — over-approximated for all);
//   - selector expressions propagate from their base only when the selected
//     field/result has pointer-like type (aliasing is possible);
//   - index *reads* do not propagate (b.cols[i] yields an element the
//     analyzers model separately); call results are untainted unless Source
//     or Borrow says otherwise.
func (t *Taint) ExprTaintedAt(e ast.Expr, n *Node) bool {
	if t.cfg.Source != nil && t.cfg.Source(e) {
		return true
	}
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := t.R.Info.Uses[e].(*types.Var); ok {
			return t.VarTaintedAt(v, n)
		}
		if v, ok := t.R.Info.Defs[e].(*types.Var); ok {
			return t.VarTaintedAt(v, n)
		}
		return false
	case *ast.ParenExpr:
		return t.ExprTaintedAt(e.X, n)
	case *ast.StarExpr:
		return t.ExprTaintedAt(e.X, n)
	case *ast.UnaryExpr:
		return t.ExprTaintedAt(e.X, n)
	case *ast.TypeAssertExpr:
		return t.ExprTaintedAt(e.X, n)
	case *ast.SliceExpr:
		return t.ExprTaintedAt(e.X, n)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if t.ExprTaintedAt(el, n) {
				return true
			}
		}
		return false
	case *ast.SelectorExpr:
		if tv, ok := t.R.Info.Types[e]; ok && !pointerLike(tv.Type) {
			return false
		}
		return t.ExprTaintedAt(e.X, n)
	case *ast.CallExpr:
		if t.cfg.Borrow != nil && t.cfg.Borrow(e) {
			// Taint flows through receiver and arguments.
			if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok && t.ExprTaintedAt(sel.X, n) {
				return true
			}
			for _, a := range e.Args {
				if t.ExprTaintedAt(a, n) {
					return true
				}
			}
		}
		return false
	}
	return false
}

// pointerLike reports whether values of type t can alias other storage:
// pointers, slices, maps, channels, functions, interfaces, unsafe pointers,
// and composites containing them.
func pointerLike(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if pointerLike(u.Field(i).Type()) {
				return true
			}
		}
		return false
	case *types.Array:
		return pointerLike(u.Elem())
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}
