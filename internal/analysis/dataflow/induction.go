package dataflow

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// LoopBody returns the body block of a for or range statement, or nil.
func LoopBody(s ast.Stmt) *ast.BlockStmt {
	switch s := s.(type) {
	case *ast.ForStmt:
		return s.Body
	case *ast.RangeStmt:
		return s.Body
	}
	return nil
}

// MonotoneInLoop reports whether variable v is monotone-or-invariant across
// iterations of loop (a *ast.ForStmt or *ast.RangeStmt): every write to v
// lexically inside the loop (body + post statement) is either `v++` or
// `v += c` with a non-negative constant c. A variable with no writes inside
// the loop is invariant, which also satisfies the contract. Writes through
// pointers or closures are not modelled (documented unsoundness).
func MonotoneInLoop(v *types.Var, loop ast.Stmt, info *types.Info) bool {
	var region ast.Node
	switch s := loop.(type) {
	case *ast.ForStmt:
		region = s
	case *ast.RangeStmt:
		// The range clause itself redefines key/value each iteration in an
		// unordered-for-maps way; a range variable is not monotone.
		if idOf(s.Key, info) == v || idOf(s.Value, info) == v {
			return false
		}
		region = s
	default:
		return false
	}

	ok := true
	ast.Inspect(region, func(x ast.Node) bool {
		if !ok {
			return false
		}
		switch s := x.(type) {
		case *ast.IncDecStmt:
			if idOf(s.X, info) == v && s.Tok == token.DEC {
				ok = false
			}
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				if idOf(lhs, info) != v {
					continue
				}
				switch s.Tok {
				case token.ADD_ASSIGN:
					if !nonNegativeConst(s.Rhs[0], info) {
						ok = false
					}
				case token.ASSIGN, token.DEFINE:
					// v = v + c is monotone; anything else is not provably so.
					if len(s.Rhs) != len(s.Lhs) || !isSelfAddConst(s.Rhs[i], v, info) {
						ok = false
					}
				default:
					ok = false
				}
			}
		case *ast.RangeStmt:
			if x != region && (idOf(s.Key, info) == v || idOf(s.Value, info) == v) {
				ok = false
			}
		}
		return true
	})
	return ok
}

// InvariantInLoop reports whether v has no writes lexically inside loop at
// all — its value is fixed for the loop's duration (modulo pointer/closure
// writes, not modelled).
func InvariantInLoop(v *types.Var, loop ast.Stmt, info *types.Info) bool {
	invariant := true
	ast.Inspect(loop, func(x ast.Node) bool {
		if !invariant {
			return false
		}
		switch s := x.(type) {
		case *ast.IncDecStmt:
			if idOf(s.X, info) == v {
				invariant = false
			}
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if idOf(lhs, info) == v {
					invariant = false
				}
			}
		case *ast.RangeStmt:
			if idOf(s.Key, info) == v || idOf(s.Value, info) == v {
				invariant = false
			}
		case *ast.UnaryExpr:
			// &v: address taken inside the loop — assume arbitrary writes.
			if s.Op == token.AND && idOf(s.X, info) == v {
				invariant = false
			}
		}
		return true
	})
	return invariant
}

func idOf(e ast.Expr, info *types.Info) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

func nonNegativeConst(e ast.Expr, info *types.Info) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	if tv.Value.Kind() != constant.Int {
		return false
	}
	v, ok := constant.Int64Val(tv.Value)
	return ok && v >= 0
}

// isSelfAddConst matches `v + c` / `c + v` with c a non-negative constant,
// or plain `v` (a no-op rebind).
func isSelfAddConst(e ast.Expr, v *types.Var, info *types.Info) bool {
	e = ast.Unparen(e)
	if idOf(e, info) == v {
		return true
	}
	be, ok := e.(*ast.BinaryExpr)
	if !ok || be.Op != token.ADD {
		return false
	}
	if idOf(ast.Unparen(be.X), info) == v && nonNegativeConst(be.Y, info) {
		return true
	}
	if idOf(ast.Unparen(be.Y), info) == v && nonNegativeConst(be.X, info) {
		return true
	}
	return false
}
