package dataflow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// load typechecks one file of source and returns its first FuncDecl named
// name along with the types.Info.
func load(t *testing.T, src, name string) (*ast.FuncDecl, *types.Info, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd, info, fset
		}
	}
	t.Fatalf("func %s not found", name)
	return nil, nil, nil
}

func findVar(t *testing.T, info *types.Info, name string) *types.Var {
	t.Helper()
	for _, obj := range info.Defs {
		if v, ok := obj.(*types.Var); ok && v.Name() == name {
			return v
		}
	}
	t.Fatalf("var %s not found", name)
	return nil
}

// nodeFor finds the CFG node whose statement contains the given source
// fragment (by re-rendering positions is overkill; we match statement type +
// a predicate).
func nodeWhere(g *Graph, pred func(ast.Stmt) bool) *Node {
	for _, n := range g.Nodes {
		if n.Stmt != nil && pred(n.Stmt) {
			return n
		}
	}
	return nil
}

func isCallNamed(s ast.Stmt, fn string) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == fn
}

func TestCFGLinear(t *testing.T) {
	fd, _, _ := load(t, `package p
func use(...interface{}) {}
func f() {
	x := 1
	use(x)
}`, "f")
	g := New(fd.Body)
	// Entry, Exit, assign, call.
	if len(g.Nodes) != 4 {
		t.Fatalf("nodes = %d, want 4", len(g.Nodes))
	}
	if len(g.Entry.Succs) != 1 {
		t.Fatalf("entry succs = %d", len(g.Entry.Succs))
	}
	if len(g.Exit.Preds) != 1 {
		t.Fatalf("exit preds = %d", len(g.Exit.Preds))
	}
}

func TestCFGIfElse(t *testing.T) {
	fd, _, _ := load(t, `package p
func use(...interface{}) {}
func f(c bool) {
	if c {
		use(1)
	} else {
		use(2)
	}
	use(3)
}`, "f")
	g := New(fd.Body)
	ifn := nodeWhere(g, func(s ast.Stmt) bool { _, ok := s.(*ast.IfStmt); return ok })
	if ifn == nil || len(ifn.Succs) != 2 {
		t.Fatalf("if node succs = %v", ifn)
	}
	after := nodeWhere(g, func(s ast.Stmt) bool { return isCallNamed(s, "use") && s.Pos() > ifn.Stmt.End() })
	if after == nil || len(after.Preds) != 2 {
		t.Fatalf("join preds wrong: %v", after)
	}
}

func TestCFGForLoopBackEdge(t *testing.T) {
	fd, _, _ := load(t, `package p
func use(...interface{}) {}
func f() {
	for i := 0; i < 10; i++ {
		use(i)
	}
	use(0)
}`, "f")
	g := New(fd.Body)
	head := nodeWhere(g, func(s ast.Stmt) bool { _, ok := s.(*ast.ForStmt); return ok })
	post := nodeWhere(g, func(s ast.Stmt) bool { _, ok := s.(*ast.IncDecStmt); return ok })
	if head == nil || post == nil {
		t.Fatal("missing loop nodes")
	}
	// post → head back edge.
	found := false
	for _, s := range post.Succs {
		if s == head {
			found = true
		}
	}
	if !found {
		t.Fatal("no back edge from post to header")
	}
	// header must also exit the loop.
	if !g.Reachable(head, g.Exit) {
		t.Fatal("loop exit unreachable")
	}
}

func TestCFGBreakContinue(t *testing.T) {
	fd, _, _ := load(t, `package p
func use(...interface{}) {}
func f(xs []int) {
	for _, x := range xs {
		if x == 0 {
			continue
		}
		if x == 1 {
			break
		}
		use(x)
	}
	use(9)
}`, "f")
	g := New(fd.Body)
	head := nodeWhere(g, func(s ast.Stmt) bool { _, ok := s.(*ast.RangeStmt); return ok })
	var brk, cont *Node
	for _, n := range g.Nodes {
		if bs, ok := n.Stmt.(*ast.BranchStmt); ok {
			switch bs.Tok {
			case token.BREAK:
				brk = n
			case token.CONTINUE:
				cont = n
			}
		}
	}
	if cont == nil || cont.Succs[0] != head {
		t.Fatal("continue must target range header")
	}
	after := nodeWhere(g, func(s ast.Stmt) bool { return isCallNamed(s, "use") && s.Pos() > head.Stmt.End() })
	if brk == nil || brk.Succs[0] != after {
		t.Fatal("break must target statement after loop")
	}
}

func TestCFGSwitchFallthroughAndReturn(t *testing.T) {
	fd, _, _ := load(t, `package p
func use(...interface{}) {}
func f(x int) {
	switch x {
	case 0:
		use(0)
		fallthrough
	case 1:
		use(1)
	default:
		return
	}
	use(2)
}`, "f")
	g := New(fd.Body)
	var ft *Node
	for _, n := range g.Nodes {
		if bs, ok := n.Stmt.(*ast.BranchStmt); ok && bs.Tok == token.FALLTHROUGH {
			ft = n
		}
	}
	if ft == nil {
		t.Fatal("no fallthrough node")
	}
	// fallthrough must reach use(1) without passing the switch header.
	next := ft.Succs[0]
	if !isCallNamed(next.Stmt, "use") {
		t.Fatalf("fallthrough target = %T", next.Stmt)
	}
	ret := nodeWhere(g, func(s ast.Stmt) bool { _, ok := s.(*ast.ReturnStmt); return ok })
	if ret.Succs[0] != g.Exit {
		t.Fatal("return must edge to exit")
	}
}

func TestReachingDefsKill(t *testing.T) {
	fd, info, _ := load(t, `package p
func use(...interface{}) {}
func f(c bool) {
	x := 1
	if c {
		x = 2
	}
	use(x)
}`, "f")
	r := NewReaching(fd, info)
	x := findVar(t, info, "x")
	useN := nodeWhere(r.Graph, func(s ast.Stmt) bool { return isCallNamed(s, "use") })
	ds := r.ReachingAt(x, useN)
	if len(ds) != 2 {
		t.Fatalf("reaching defs of x at use = %d, want 2 (both branches)", len(ds))
	}
}

func TestReachingDefsStraightKill(t *testing.T) {
	fd, info, _ := load(t, `package p
func use(...interface{}) {}
func f() {
	x := 1
	x = 2
	use(x)
}`, "f")
	r := NewReaching(fd, info)
	x := findVar(t, info, "x")
	useN := nodeWhere(r.Graph, func(s ast.Stmt) bool { return isCallNamed(s, "use") })
	ds := r.ReachingAt(x, useN)
	if len(ds) != 1 {
		t.Fatalf("reaching defs = %d, want 1 (x=2 kills x:=1)", len(ds))
	}
	if lit, ok := ds[0].Rhs.(*ast.BasicLit); !ok || lit.Value != "2" {
		t.Fatalf("surviving def rhs = %v", ds[0].Rhs)
	}
}

func TestReachingLoopCarried(t *testing.T) {
	fd, info, _ := load(t, `package p
func use(...interface{}) {}
func f(n int) {
	s := 0
	for i := 0; i < n; i++ {
		use(s)
		s = s + i
	}
}`, "f")
	r := NewReaching(fd, info)
	s := findVar(t, info, "s")
	useN := nodeWhere(r.Graph, func(st ast.Stmt) bool { return isCallNamed(st, "use") })
	ds := r.ReachingAt(s, useN)
	// Both s := 0 and the loop-carried s = s + i reach the use.
	if len(ds) != 2 {
		t.Fatalf("loop-carried reaching defs = %d, want 2", len(ds))
	}
}

func TestTaintThroughCopies(t *testing.T) {
	fd, info, _ := load(t, `package p
func source() []byte { return nil }
func sink(...interface{}) {}
func f() {
	a := source()
	b := a
	c := b[1:]
	d := 5
	sink(c, d)
}`, "f")
	r := NewReaching(fd, info)
	tt := NewTaint(r, TaintConfig{Source: func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "source"
	}})
	sinkN := nodeWhere(r.Graph, func(s ast.Stmt) bool { return isCallNamed(s, "sink") })
	if !tt.VarTaintedAt(findVar(t, info, "c"), sinkN) {
		t.Fatal("c should be tainted via a → b → slice")
	}
	if tt.VarTaintedAt(findVar(t, info, "d"), sinkN) {
		t.Fatal("d must stay untainted")
	}
}

func TestTaintKilledByReassign(t *testing.T) {
	fd, info, _ := load(t, `package p
func source() []byte { return nil }
func sink(...interface{}) {}
func f() {
	a := source()
	a = nil
	sink(a)
}`, "f")
	r := NewReaching(fd, info)
	tt := NewTaint(r, TaintConfig{Source: func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "source"
	}})
	sinkN := nodeWhere(r.Graph, func(s ast.Stmt) bool { return isCallNamed(s, "sink") })
	if tt.VarTaintedAt(findVar(t, info, "a"), sinkN) {
		t.Fatal("a = nil should kill the tainted definition")
	}
}

func TestTaintCompositeAndStruct(t *testing.T) {
	fd, info, _ := load(t, `package p
type box struct{ buf []byte }
func source() []byte { return nil }
func sink(...interface{}) {}
func f() {
	a := source()
	w := box{buf: a}
	n := len(a)
	sink(w, n)
}`, "f")
	r := NewReaching(fd, info)
	tt := NewTaint(r, TaintConfig{Source: func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "source"
	}})
	sinkN := nodeWhere(r.Graph, func(s ast.Stmt) bool { return isCallNamed(s, "sink") })
	if !tt.VarTaintedAt(findVar(t, info, "w"), sinkN) {
		t.Fatal("w should be tainted: composite literal embeds tainted slice")
	}
	if tt.VarTaintedAt(findVar(t, info, "n"), sinkN) {
		t.Fatal("n (len result) must stay untainted: call results are clean")
	}
}

func TestMonotoneInLoop(t *testing.T) {
	src := `package p
func use(...interface{}) {}
func f(xs []int) {
	id := 0
	dec := 100
	step := 0
	inv := 7
	for _, x := range xs {
		use(x, id, dec, step, inv)
		id++
		dec--
		step += 2
	}
}`
	fd, info, _ := load(t, src, "f")
	var loop ast.Stmt
	ast.Inspect(fd, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok {
			loop = rs
			return false
		}
		return true
	})
	cases := []struct {
		name string
		want bool
	}{
		{"id", true}, {"dec", false}, {"step", true}, {"inv", true},
	}
	for _, c := range cases {
		if got := MonotoneInLoop(findVar(t, info, c.name), loop, info); got != c.want {
			t.Errorf("MonotoneInLoop(%s) = %v, want %v", c.name, got, c.want)
		}
	}
	if MonotoneInLoop(findVar(t, info, "x"), loop, info) {
		t.Error("range value variable must not be monotone")
	}
	if !InvariantInLoop(findVar(t, info, "inv"), loop, info) {
		t.Error("inv should be invariant")
	}
	if InvariantInLoop(findVar(t, info, "id"), loop, info) {
		t.Error("id is written in the loop; not invariant")
	}
}

func TestReachableHelper(t *testing.T) {
	fd, _, _ := load(t, `package p
func a() {}
func b() {}
func f(c bool) {
	if c {
		a()
		return
	}
	b()
}`, "f")
	g := New(fd.Body)
	an := nodeWhere(g, func(s ast.Stmt) bool { return isCallNamed(s, "a") })
	bn := nodeWhere(g, func(s ast.Stmt) bool { return isCallNamed(s, "b") })
	if g.Reachable(an, bn) {
		t.Fatal("b() must not be reachable from a() (return intervenes)")
	}
	if !g.Reachable(g.Entry, bn) || !g.Reachable(g.Entry, an) {
		t.Fatal("both branches reachable from entry")
	}
}

func TestEntryDefsForParams(t *testing.T) {
	fd, info, _ := load(t, `package p
func use(...interface{}) {}
func f(p int) {
	use(p)
}`, "f")
	r := NewReaching(fd, info)
	p := findVar(t, info, "p")
	useN := nodeWhere(r.Graph, func(s ast.Stmt) bool { return isCallNamed(s, "use") })
	ds := r.ReachingAt(p, useN)
	if len(ds) != 1 || ds[0].Node != nil {
		t.Fatalf("param should have exactly the entry def reaching, got %d", len(ds))
	}
}

func TestGotoResolution(t *testing.T) {
	fd, _, _ := load(t, `package p
func use(...interface{}) {}
func f(c bool) {
	if c {
		goto done
	}
	use(1)
done:
	use(2)
}`, "f")
	g := New(fd.Body)
	var gn *Node
	for _, n := range g.Nodes {
		if bs, ok := n.Stmt.(*ast.BranchStmt); ok && bs.Tok == token.GOTO {
			gn = n
		}
	}
	if gn == nil || len(gn.Succs) != 1 {
		t.Fatal("goto node missing or unwired")
	}
	if !isCallNamed(gn.Succs[0].Stmt, "use") {
		t.Fatalf("goto target = %T", gn.Succs[0].Stmt)
	}
	if !strings.Contains(srcOf(t, gn.Succs[0].Stmt), "2") {
		t.Fatal("goto must land on use(2)")
	}
}

func srcOf(t *testing.T, s ast.Stmt) string {
	t.Helper()
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return ""
	}
	call := es.X.(*ast.CallExpr)
	if lit, ok := call.Args[0].(*ast.BasicLit); ok {
		return lit.Value
	}
	return ""
}
