// Package dataflow is the shared intraprocedural analysis engine behind the
// pebblevet analyzers that need more than a syntactic walk: a control-flow
// graph built directly over go/ast (no SSA — consistent with the from-scratch
// x/tools-compatible framework in internal/analysis), classic
// reaching-definitions over it, a conservative value-flow ("taint") lattice
// for tracking where values such as pooled buffers travel, and loop/induction
// helpers for reasoning about monotone identifier arguments.
//
// The engine is deliberately a may-analysis with documented approximations
// (see DESIGN.md §11): extra CFG edges and over-tainting only make the
// analyzers conservative, never silently permissive, and every analyzer built
// on it pairs with fixture tests pinning both the flagged and the clean
// shapes.
package dataflow

import (
	"go/ast"
	"go/token"
)

// A Node is one statement of the control-flow graph. Compound statements
// contribute a header node (carrying their init/condition/tag expressions)
// while their nested statements get nodes of their own; Entry and Exit are
// synthetic (Stmt == nil).
type Node struct {
	Index int
	// Stmt is the statement this node represents. For IfStmt, ForStmt,
	// RangeStmt, SwitchStmt, TypeSwitchStmt, and SelectStmt the node stands
	// for the header (init statement, condition/tag evaluation, range
	// operand) only — the bodies are separate nodes.
	Stmt  ast.Stmt
	Succs []*Node
	Preds []*Node
}

// A Graph is the control-flow graph of one function body. Panics and calls
// to runtime.Goexit are not modelled (no abnormal edges); defer bodies run at
// Exit conceptually but are treated as ordinary statements at their lexical
// position, which is conservative for forward may-analyses.
type Graph struct {
	Entry *Node
	Exit  *Node
	Nodes []*Node
}

type builder struct {
	g *Graph
	// break/continue target stacks; each entry remembers the label (possibly
	// empty) of the enclosing breakable/continuable statement.
	breaks    []branchTarget
	continues []branchTarget
	// labels maps label names to the entry node of their statement, for goto;
	// gotos seen before their label are patched after the build.
	labels  map[string]*Node
	pending []pendingGoto
}

type branchTarget struct {
	label string
	node  *Node
}

type pendingGoto struct {
	from  *Node
	label string
}

// New builds the control-flow graph of a function body (a *ast.BlockStmt).
// A nil body yields a graph with only Entry→Exit.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labels: make(map[string]*Node)}
	g.Entry = b.newNode(nil)
	g.Exit = b.newNode(nil)
	if body == nil {
		edge(g.Entry, g.Exit)
		return g
	}
	first := b.stmtList(body.List, g.Exit)
	edge(g.Entry, first)
	// Patch forward gotos; unresolved labels (shouldn't happen in
	// typechecked code) conservatively jump to Exit.
	for _, pg := range b.pending {
		if t, ok := b.labels[pg.label]; ok {
			edge(pg.from, t)
		} else {
			edge(pg.from, g.Exit)
		}
	}
	return g
}

func (b *builder) newNode(s ast.Stmt) *Node {
	n := &Node{Index: len(b.g.Nodes), Stmt: s}
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

func edge(from, to *Node) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// stmtList wires a statement sequence so that falling off the end continues
// at succ, returning the entry node of the sequence.
func (b *builder) stmtList(list []ast.Stmt, succ *Node) *Node {
	next := succ
	for i := len(list) - 1; i >= 0; i-- {
		next = b.stmt(list[i], next, "")
	}
	return next
}

// stmt builds the subgraph of one statement; label is the enclosing label
// name when the statement is the body of a LabeledStmt.
func (b *builder) stmt(s ast.Stmt, succ *Node, label string) *Node {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(s.List, succ)

	case *ast.LabeledStmt:
		// The label resolves to the entry of the labeled statement. Register
		// a placeholder first so `goto L` inside the statement resolves.
		entry := b.stmt(s.Stmt, succ, s.Label.Name)
		b.labels[s.Label.Name] = entry
		return entry

	case *ast.IfStmt:
		n := b.newNode(s)
		then := b.stmtList(s.Body.List, succ)
		edge(n, then)
		if s.Else != nil {
			edge(n, b.stmt(s.Else, succ, ""))
		} else {
			edge(n, succ)
		}
		return n

	case *ast.ForStmt:
		head := b.newNode(s)
		// The loop re-entry point: the post statement when present, else the
		// header. `continue` jumps there.
		reentry := head
		var post *Node
		if s.Post != nil {
			post = b.newNode(s.Post)
			edge(post, head)
			reentry = post
		}
		b.pushLoop(label, succ, reentry)
		bodyEntry := b.stmtList(s.Body.List, reentry)
		b.popLoop()
		edge(head, bodyEntry)
		// Conservative loop exit even for `for {}` — a missing edge would hide
		// code after the loop from the analyses.
		edge(head, succ)
		return head

	case *ast.RangeStmt:
		head := b.newNode(s)
		b.pushLoop(label, succ, head)
		bodyEntry := b.stmtList(s.Body.List, head)
		b.popLoop()
		edge(head, bodyEntry)
		edge(head, succ)
		return head

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var bodyList []ast.Stmt
		if sw, ok := s.(*ast.SwitchStmt); ok {
			bodyList = sw.Body.List
		} else {
			bodyList = s.(*ast.TypeSwitchStmt).Body.List
		}
		head := b.newNode(s)
		b.pushBreak(label, succ)
		// Build case bodies back to front so fallthrough can target the next
		// case's body entry.
		caseEntries := make([]*Node, len(bodyList))
		nextBody := succ // fallthrough target of the last case
		for i := len(bodyList) - 1; i >= 0; i-- {
			cc := bodyList[i].(*ast.CaseClause)
			cn := b.newNode(cc)
			bodyEntry := b.stmtListFallthrough(cc.Body, succ, nextBody)
			edge(cn, bodyEntry)
			caseEntries[i] = cn
			nextBody = bodyEntry
		}
		b.popBreak()
		hasDefault := false
		for i, cs := range bodyList {
			if cs.(*ast.CaseClause).List == nil {
				hasDefault = true
			}
			edge(head, caseEntries[i])
		}
		if !hasDefault {
			edge(head, succ)
		}
		return head

	case *ast.SelectStmt:
		head := b.newNode(s)
		b.pushBreak(label, succ)
		hasDefault := false
		for _, cs := range s.Body.List {
			cc := cs.(*ast.CommClause)
			cn := b.newNode(cc)
			edge(cn, b.stmtList(cc.Body, succ))
			edge(head, cn)
			if cc.Comm == nil {
				hasDefault = true
			}
		}
		b.popBreak()
		if !hasDefault && len(s.Body.List) == 0 {
			edge(head, succ)
		}
		return head

	case *ast.ReturnStmt:
		n := b.newNode(s)
		edge(n, b.g.Exit)
		return n

	case *ast.BranchStmt:
		n := b.newNode(s)
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			edge(n, b.target(b.breaks, label))
		case token.CONTINUE:
			edge(n, b.target(b.continues, label))
		case token.GOTO:
			if t, ok := b.labels[label]; ok {
				edge(n, t)
			} else {
				b.pending = append(b.pending, pendingGoto{from: n, label: label})
			}
		case token.FALLTHROUGH:
			// Handled by stmtListFallthrough; a stray fallthrough (invalid Go)
			// falls to succ.
			edge(n, succ)
		}
		return n

	default:
		// Simple statements: assignments, declarations, expressions, send,
		// inc/dec, go, defer, empty.
		n := b.newNode(s)
		edge(n, succ)
		return n
	}
}

// stmtListFallthrough is stmtList for a case body whose trailing fallthrough
// must jump to the next case body instead of succ.
func (b *builder) stmtListFallthrough(list []ast.Stmt, succ, nextBody *Node) *Node {
	if n := len(list); n > 0 {
		if br, ok := list[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
			fn := b.newNode(br)
			edge(fn, nextBody)
			return b.seqInto(list[:n-1], fn)
		}
	}
	return b.stmtList(list, succ)
}

func (b *builder) seqInto(list []ast.Stmt, succ *Node) *Node {
	next := succ
	for i := len(list) - 1; i >= 0; i-- {
		next = b.stmt(list[i], next, "")
	}
	return next
}

func (b *builder) pushLoop(label string, brk, cont *Node) {
	b.breaks = append(b.breaks, branchTarget{label: label, node: brk})
	b.continues = append(b.continues, branchTarget{label: label, node: cont})
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

func (b *builder) pushBreak(label string, brk *Node) {
	b.breaks = append(b.breaks, branchTarget{label: label, node: brk})
}

func (b *builder) popBreak() { b.breaks = b.breaks[:len(b.breaks)-1] }

// target resolves a break/continue to the innermost matching target; with a
// label, the innermost target carrying it. Unresolvable branches (invalid
// code) go to Exit.
func (b *builder) target(stack []branchTarget, label string) *Node {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].node
		}
	}
	return b.g.Exit
}

// Reachable reports whether to is reachable from from along CFG edges
// (excluding the trivial zero-length path: from reaches itself only through a
// cycle).
func (g *Graph) Reachable(from, to *Node) bool {
	seen := make([]bool, len(g.Nodes))
	stack := make([]*Node, 0, 8)
	stack = append(stack, from.Succs...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == to {
			return true
		}
		if n.Index < len(seen) && !seen[n.Index] {
			seen[n.Index] = true
			stack = append(stack, n.Succs...)
		}
	}
	return false
}
