// Package analysis is a lightweight, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis API surface that pebble's static-analysis
// suite needs. The container this repo grows in has no module proxy access,
// so instead of vendoring x/tools we mirror the parts of its contract we use:
// an Analyzer is a named check with a Run function over a typechecked
// compilation unit (a Pass), and drivers — the go vet -vettool protocol in
// internal/analysis/unitchecker, the fixture harness in
// internal/analysis/analysistest — construct Passes and collect Diagnostics.
// Analyzer authors write against the same shapes they would upstream, which
// keeps a future migration to the real framework mechanical.
package analysis

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static-analysis check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, flags, and
	// //pebblevet:ignore directives. It must be a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation; the first line is used as a
	// one-line summary by the driver's help output.
	Doc string

	// Flags defines analyzer-specific flags. The unitchecker driver exposes
	// them prefixed with the analyzer name (e.g. -determinism.idpkgs=...).
	Flags flag.FlagSet

	// Run executes the check over one compilation unit and reports findings
	// via pass.Report. The result value is made available to dependent
	// analyzers through Pass.ResultOf (unused by the current suite, kept for
	// API compatibility).
	Run func(*Pass) (interface{}, error)

	// Requires lists analyzers whose results this one consumes; the driver
	// runs them first.
	Requires []*Analyzer
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzer with the parsed and typechecked unit under
// analysis plus the Report sink for its findings.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	ResultOf  map[*Analyzer]interface{}
	Report    func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

func (p *Pass) String() string { return p.Analyzer.Name + "@" + p.Pkg.Path() }

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos // optional
	Category string    // optional sub-category within the analyzer
	Message  string
}

// Validate checks that the analyzer graph is well formed: names are unique
// and non-empty, Run functions are set, and Requires edges are acyclic.
func Validate(analyzers []*Analyzer) error {
	seen := make(map[string]bool)
	// color: 0 unvisited, 1 on stack, 2 done — standard DFS cycle check.
	color := make(map[*Analyzer]int)
	var visit func(a *Analyzer) error
	visit = func(a *Analyzer) error {
		switch color[a] {
		case 1:
			return fmt.Errorf("analysis: cycle involving analyzer %q", a.Name)
		case 2:
			return nil
		}
		if a.Name == "" {
			return fmt.Errorf("analysis: analyzer with empty name")
		}
		if a.Run == nil {
			return fmt.Errorf("analysis: analyzer %q has no Run function", a.Name)
		}
		color[a] = 1
		for _, req := range a.Requires {
			if err := visit(req); err != nil {
				return err
			}
		}
		color[a] = 2
		return nil
	}
	for _, a := range analyzers {
		if err := visit(a); err != nil {
			return err
		}
		if seen[a.Name] {
			return fmt.Errorf("analysis: duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}
