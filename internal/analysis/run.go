package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A Unit is one parsed and typechecked package, ready for analysis. Both
// drivers (unitchecker, analysistest) reduce their input to this shape.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// A Finding pairs a diagnostic with the analyzer that produced it.
type Finding struct {
	Analyzer   *Analyzer
	Diagnostic Diagnostic
}

// RunAnalyzers executes the analyzers (and their Requires closure) over the
// unit, filters diagnostics silenced by //pebblevet:ignore directives, and
// returns the survivors sorted by position then analyzer name. An analyzer
// returning an error aborts the run.
//
// When the StaleIgnore pseudo-analyzer is in the list, the driver appends
// one finding per ignore directive that names an analyzer which ran here but
// never had a diagnostic suppressed by it — staleness is a whole-run
// property, so it is computed after every real analyzer has reported.
func RunAnalyzers(unit *Unit, analyzers []*Analyzer) ([]Finding, error) {
	if err := Validate(analyzers); err != nil {
		return nil, err
	}
	results := make(map[*Analyzer]interface{})
	ran := make(map[*Analyzer]bool)
	sup := NewSuppressor(unit.Fset, unit.Files)
	var findings []Finding

	var exec func(a *Analyzer) error
	exec = func(a *Analyzer) error {
		if ran[a] {
			return nil
		}
		ran[a] = true
		for _, req := range a.Requires {
			if err := exec(req); err != nil {
				return err
			}
		}
		inputs := make(map[*Analyzer]interface{}, len(a.Requires))
		for _, req := range a.Requires {
			inputs[req] = results[req]
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      unit.Fset,
			Files:     unit.Files,
			Pkg:       unit.Pkg,
			TypesInfo: unit.Info,
			ResultOf:  inputs,
			Report: func(d Diagnostic) {
				if sup.Suppressed(a.Name, d.Pos) {
					return
				}
				findings = append(findings, Finding{Analyzer: a, Diagnostic: d})
			},
		}
		res, err := a.Run(pass)
		if err != nil {
			return fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
		results[a] = res
		return nil
	}
	staleEnabled := false
	for _, a := range analyzers {
		if a == StaleIgnore {
			staleEnabled = true
			continue
		}
		if err := exec(a); err != nil {
			return nil, err
		}
	}
	if staleEnabled {
		ranNames := make(map[string]bool, len(ran))
		for a := range ran {
			ranNames[a.Name] = true
		}
		for _, d := range sup.Stale(ranNames) {
			findings = append(findings, Finding{Analyzer: StaleIgnore, Diagnostic: d})
		}
	}
	sort.SliceStable(findings, func(i, j int) bool {
		pi, pj := findings[i].Diagnostic.Pos, findings[j].Diagnostic.Pos
		if pi != pj {
			return pi < pj
		}
		return findings[i].Analyzer.Name < findings[j].Analyzer.Name
	})
	return findings, nil
}

// NewInfo returns a types.Info with every map the suite's analyzers consult
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}
