// Package invariants property-tests the whole stack on randomly generated
// pipelines: the paper's central correctness claim — the contributing data
// returned by backtracing suffices to reproduce the queried result items —
// plus structural invariants of the captured provenance.
package invariants

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"pebble/internal/backtrace"
	"pebble/internal/core"
	"pebble/internal/engine"
	"pebble/internal/nested"
	"pebble/internal/provenance"
)

// randDataset builds a random input of items with a fixed base schema:
// {id:int, cat:string, val:int, tags:{{string}}, subs:{{<k:string, v:int>}}}.
func randDataset(r *rand.Rand, n int) []nested.Value {
	cats := []string{"a", "b", "c", "d"}
	words := []string{"x", "y", "z", "w"}
	out := make([]nested.Value, 0, n)
	for i := 0; i < n; i++ {
		nt := r.Intn(4)
		tags := make([]nested.Value, 0, nt)
		for j := 0; j < nt; j++ {
			tags = append(tags, nested.StringVal(words[r.Intn(len(words))]))
		}
		ns := r.Intn(3)
		subs := make([]nested.Value, 0, ns)
		for j := 0; j < ns; j++ {
			subs = append(subs, nested.Item(
				nested.F("k", nested.StringVal(words[r.Intn(len(words))])),
				nested.F("v", nested.Int(int64(r.Intn(10)))),
			))
		}
		out = append(out, nested.Item(
			nested.F("id", nested.Int(int64(i))),
			nested.F("cat", nested.StringVal(cats[r.Intn(len(cats))])),
			nested.F("val", nested.Int(int64(r.Intn(20)))),
			nested.F("tags", nested.Bag(tags...)),
			nested.F("subs", nested.Bag(subs...)),
		))
	}
	return out
}

// pipelineState tracks the schema while the generator appends operators, so
// every generated pipeline is well-formed.
type pipelineState struct {
	op *engine.Op
	// attrs maps attribute name to a coarse type tag: "int", "str",
	// "strbag", "subbag", "subitem".
	attrs map[string]string
}

func baseState(op *engine.Op) *pipelineState {
	return &pipelineState{op: op, attrs: map[string]string{
		"id": "int", "cat": "str", "val": "int", "tags": "strbag", "subs": "subbag",
	}}
}

// randPipeline builds a random pipeline of 2–6 operators over the input
// dataset "in". It returns the pipeline; the sink is the last operator.
func randPipeline(r *rand.Rand) *engine.Pipeline {
	p := engine.NewPipeline()
	st := baseState(p.Source("in"))
	steps := 2 + r.Intn(4)
	for i := 0; i < steps; i++ {
		st = randStep(r, p, st)
	}
	return p
}

func randStep(r *rand.Rand, p *engine.Pipeline, st *pipelineState) *pipelineState {
	choices := []string{"filter", "filter", "select"}
	if st.attrs["tags"] == "strbag" || st.attrs["subs"] == "subbag" {
		choices = append(choices, "flatten", "flatten")
	}
	if st.attrs["cat"] == "str" && (st.attrs["val"] == "int" || st.attrs["id"] == "int") {
		choices = append(choices, "aggregate")
	}
	if len(st.attrs) > 0 {
		choices = append(choices, "union", "distinct", "orderby", "limit")
	}
	switch choices[r.Intn(len(choices))] {
	case "filter":
		pred := randPred(r, st)
		return &pipelineState{op: p.Filter(st.op, pred), attrs: st.attrs}
	case "select":
		fields, attrs := randSelect(r, st)
		return &pipelineState{op: p.Select(st.op, fields...), attrs: attrs}
	case "flatten":
		if st.attrs["tags"] == "strbag" && (st.attrs["subs"] != "subbag" || r.Intn(2) == 0) {
			attrs := copyAttrs(st.attrs)
			attrs["tag"] = "str"
			attrs["tags"] = "consumedbag"
			return &pipelineState{op: p.Flatten(st.op, "tags", "tag"), attrs: attrs}
		}
		attrs := copyAttrs(st.attrs)
		attrs["sub"] = "subitem"
		attrs["subs"] = "consumedbag"
		return &pipelineState{op: p.Flatten(st.op, "subs", "sub"), attrs: attrs}
	case "aggregate":
		aggIn := "val"
		if st.attrs["val"] != "int" {
			aggIn = "id"
		}
		fn := []engine.AggFunc{engine.AggCollectList, engine.AggSum, engine.AggCount, engine.AggMax}[r.Intn(4)]
		op := p.Aggregate(st.op,
			[]engine.GroupKey{engine.Key("cat")},
			[]engine.AggSpec{engine.Agg(fn, aggIn, "agg_out")},
		)
		return &pipelineState{op: op, attrs: map[string]string{"cat": "str", "agg_out": "other"}}
	case "union":
		// Union with itself keeps the schema and doubles multiplicities.
		return &pipelineState{op: p.Union(st.op, st.op), attrs: st.attrs}
	case "distinct":
		return &pipelineState{op: p.Distinct(st.op), attrs: st.attrs}
	case "orderby":
		key := "cat"
		if st.attrs["val"] == "int" && r.Intn(2) == 0 {
			key = "val"
		}
		if st.attrs[key] == "" || st.attrs[key] == "consumedbag" {
			return st
		}
		return &pipelineState{op: p.OrderBy(st.op, r.Intn(2) == 0, engine.Col(key)), attrs: st.attrs}
	case "limit":
		return &pipelineState{op: p.Limit(st.op, 5+r.Intn(20)), attrs: st.attrs}
	}
	return st
}

func randPred(r *rand.Rand, st *pipelineState) engine.Expr {
	var preds []engine.Expr
	if st.attrs["val"] == "int" {
		preds = append(preds, engine.Le(engine.Col("val"), engine.LitInt(int64(5+r.Intn(15)))))
	}
	if st.attrs["cat"] == "str" {
		cats := []string{"a", "b", "c", "d"}
		preds = append(preds, engine.Ne(engine.Col("cat"), engine.LitString(cats[r.Intn(len(cats))])))
	}
	if st.attrs["tag"] == "str" {
		preds = append(preds, engine.Ne(engine.Col("tag"), engine.LitString("w")))
	}
	if len(preds) == 0 {
		return engine.LitBool(true)
	}
	return preds[r.Intn(len(preds))]
}

func randSelect(r *rand.Rand, st *pipelineState) ([]engine.SelectField, map[string]string) {
	var fields []engine.SelectField
	attrs := map[string]string{}
	for name, typ := range st.attrs {
		if typ == "consumedbag" {
			continue
		}
		if r.Intn(4) == 0 { // drop ~25% of attributes
			continue
		}
		fields = append(fields, engine.Column(name, name))
		attrs[name] = typ
	}
	// Keep at least cat and one more attribute so later steps stay possible.
	if _, ok := attrs["cat"]; !ok && st.attrs["cat"] != "" && st.attrs["cat"] != "consumedbag" {
		fields = append(fields, engine.Column("cat", "cat"))
		attrs["cat"] = st.attrs["cat"]
	}
	if len(attrs) < 2 {
		for name, typ := range st.attrs {
			if typ == "consumedbag" || attrs[name] != "" {
				continue
			}
			fields = append(fields, engine.Column(name, name))
			attrs[name] = typ
			break
		}
	}
	return fields, attrs
}

func copyAttrs(in map[string]string) map[string]string {
	out := make(map[string]string, len(in)+1)
	for k, v := range in {
		out[k] = v
	}
	return out
}

// union-by-self means the same source feeds two edges; Validate allows it
// and backtracing handles both sides mapping to the same predecessor.

// TestSufficiencyInvariant is the paper's central correctness property: for
// a random pipeline and a random queried result item, re-running the
// pipeline on only the contributing input items reproduces the queried item.
func TestSufficiencyInvariant(t *testing.T) {
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		r := rand.New(rand.NewSource(int64(1000 + trial)))
		values := randDataset(r, 20+r.Intn(30))
		pipe := randPipeline(r)
		gen := engine.NewIDGen(1)
		inputs := map[string]*engine.Dataset{"in": engine.NewDataset("in", values, 3, gen)}
		res, run, err := provenance.Capture(pipe, inputs, engine.Options{Partitions: 3})
		if err != nil {
			t.Fatalf("trial %d: capture: %v\nplan:\n%s", trial, err, pipe)
		}
		rows := res.Output.Rows()
		if len(rows) == 0 {
			continue // pipeline filtered everything; nothing to check
		}
		row := rows[r.Intn(len(rows))]
		b := backtrace.NewStructure()
		b.Add(row.ID, core.TreeFromValue(row.Value))
		traced, err := backtrace.Trace(run, pipe.Sink().ID(), b)
		if err != nil {
			t.Fatalf("trial %d: trace: %v\nplan:\n%s", trial, err, pipe)
		}
		// Collect the contributing raw-input indexes across all reads.
		keep := map[int64]bool{}
		total := 0
		for oid, s := range traced.BySource {
			op, ok := run.Op(oid)
			if !ok {
				t.Fatalf("trial %d: traced unknown source %d", trial, oid)
			}
			toOrig := map[int64]int64{}
			for _, sa := range op.SourceIDs {
				toOrig[sa.ID] = sa.OrigID
			}
			for _, it := range s.Items {
				orig, ok := toOrig[it.ID]
				if !ok {
					t.Fatalf("trial %d: traced id %d missing in source %d", trial, it.ID, oid)
				}
				keep[orig] = true
				total++
			}
		}
		if total == 0 {
			t.Errorf("trial %d: queried item has no provenance\nplan:\n%s", trial, pipe)
			continue
		}
		// Re-run on the reduced input.
		var reduced []nested.Value
		for _, ir := range inputs["in"].Rows() {
			if keep[ir.ID] {
				reduced = append(reduced, ir.Value)
			}
		}
		gen2 := engine.NewIDGen(1)
		reducedInputs := map[string]*engine.Dataset{"in": engine.NewDataset("in", reduced, 3, gen2)}
		res2, err := engine.Run(pipe, reducedInputs, engine.Options{Partitions: 3})
		if err != nil {
			t.Fatalf("trial %d: reduced run: %v", trial, err)
		}
		// Collection element order depends on how rows land in partitions,
		// which the reduced run redistributes; compare order-insensitively.
		want := normalize(row.Value)
		found := false
		for _, r2 := range res2.Output.Rows() {
			if nested.Equal(normalize(r2.Value), want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("trial %d: reduced input (%d of %d items) does not reproduce the queried item\nitem: %s\nplan:\n%s",
				trial, len(reduced), len(values), row.Value, pipe)
		}
	}
}

// normalize sorts every (transitively) contained collection so values can be
// compared independently of partition-induced element order.
func normalize(v nested.Value) nested.Value {
	switch v.Kind() {
	case nested.KindItem:
		fields := make([]nested.Field, v.NumFields())
		for i, f := range v.Fields() {
			fields[i] = nested.F(f.Name, normalize(f.Value))
		}
		return nested.Item(fields...)
	case nested.KindBag, nested.KindSet:
		elems := make([]nested.Value, len(v.Elems()))
		for i, e := range v.Elems() {
			elems[i] = normalize(e)
		}
		return nested.Bag(elems...).SortElems()
	default:
		return v
	}
}

// TestAssociationClosureInvariant checks on random pipelines that every
// input identifier recorded by an operator was produced by its predecessor
// and every result row has an association.
func TestAssociationClosureInvariant(t *testing.T) {
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		r := rand.New(rand.NewSource(int64(5000 + trial)))
		values := randDataset(r, 15+r.Intn(25))
		pipe := randPipeline(r)
		gen := engine.NewIDGen(1)
		inputs := map[string]*engine.Dataset{"in": engine.NewDataset("in", values, 2, gen)}
		res, run, err := provenance.Capture(pipe, inputs, engine.Options{Partitions: 2})
		if err != nil {
			t.Fatalf("trial %d: %v\nplan:\n%s", trial, err, pipe)
		}
		produced := map[int]map[int64]bool{}
		for _, op := range run.Operators() {
			ids := map[int64]bool{}
			for _, a := range op.Unary {
				ids[a.Out] = true
			}
			for _, a := range op.Binary {
				ids[a.Out] = true
			}
			for _, a := range op.Flatten {
				ids[a.Out] = true
			}
			for _, a := range op.Agg {
				ids[a.Out] = true
			}
			for _, sa := range op.SourceIDs {
				ids[sa.ID] = true
			}
			produced[op.OID] = ids
		}
		for _, op := range run.Operators() {
			if op.Type == engine.OpSource {
				continue
			}
			check := func(id int64, inputIdx int) {
				if id == -1 {
					return
				}
				if !produced[op.Inputs[inputIdx].Pred][id] {
					t.Errorf("trial %d: op %d consumes unknown id %d\nplan:\n%s", trial, op.OID, id, pipe)
				}
			}
			for _, a := range op.Unary {
				check(a.In, 0)
			}
			for _, a := range op.Binary {
				check(a.Left, 0)
				check(a.Right, 1)
			}
			for _, a := range op.Flatten {
				check(a.In, 0)
			}
			for _, a := range op.Agg {
				for _, id := range a.Ins {
					check(id, 0)
				}
			}
		}
		sinkIDs := produced[pipe.Sink().ID()]
		for _, row := range res.Output.Rows() {
			if !sinkIDs[row.ID] {
				t.Errorf("trial %d: result row %d lacks an association", trial, row.ID)
			}
		}
	}
}

// TestDeterminismInvariant: the engine's output (values and order) is
// deterministic across runs and independent of capture.
func TestDeterminismInvariant(t *testing.T) {
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		r := rand.New(rand.NewSource(int64(9000 + trial)))
		values := randDataset(r, 20)
		pipe := randPipeline(r)
		runOnce := func(capture bool) []nested.Value {
			gen := engine.NewIDGen(1)
			inputs := map[string]*engine.Dataset{"in": engine.NewDataset("in", values, 3, gen)}
			var res *engine.Result
			var err error
			if capture {
				res, _, err = provenance.Capture(pipe, inputs, engine.Options{Partitions: 3})
			} else {
				res, err = engine.Run(pipe, inputs, engine.Options{Partitions: 3})
			}
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			return res.Output.Values()
		}
		a, b, c := runOnce(false), runOnce(false), runOnce(true)
		if len(a) != len(b) || len(a) != len(c) {
			t.Fatalf("trial %d: nondeterministic row counts %d/%d/%d\nplan:\n%s",
				trial, len(a), len(b), len(c), pipe)
		}
		for i := range a {
			if !nested.Equal(a[i], b[i]) {
				t.Errorf("trial %d: row %d differs across runs", trial, i)
			}
			if !nested.Equal(a[i], c[i]) {
				t.Errorf("trial %d: row %d differs with capture enabled", trial, i)
			}
		}
	}
}

// TestBacktraceTotalCoverage: tracing the full result covers a superset of
// each single-item trace.
func TestBacktraceTotalCoverage(t *testing.T) {
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		r := rand.New(rand.NewSource(int64(7000 + trial)))
		values := randDataset(r, 20)
		pipe := randPipeline(r)
		gen := engine.NewIDGen(1)
		inputs := map[string]*engine.Dataset{"in": engine.NewDataset("in", values, 2, gen)}
		res, run, err := provenance.Capture(pipe, inputs, engine.Options{Partitions: 2})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rows := res.Output.Rows()
		if len(rows) == 0 {
			continue
		}
		all := backtrace.NewStructure()
		for _, row := range rows {
			all.Add(row.ID, core.TreeFromValue(row.Value))
		}
		allTraced, err := backtrace.Trace(run, pipe.Sink().ID(), all)
		if err != nil {
			t.Fatal(err)
		}
		allIDs := map[string]bool{}
		for oid, s := range allTraced.BySource {
			for _, id := range s.IDs() {
				allIDs[fmt.Sprintf("%d/%d", oid, id)] = true
			}
		}
		one := backtrace.NewStructure()
		one.Add(rows[0].ID, core.TreeFromValue(rows[0].Value))
		oneTraced, err := backtrace.Trace(run, pipe.Sink().ID(), one)
		if err != nil {
			t.Fatal(err)
		}
		for oid, s := range oneTraced.BySource {
			for _, id := range s.IDs() {
				if !allIDs[fmt.Sprintf("%d/%d", oid, id)] {
					t.Errorf("trial %d: single-item trace found %d/%d missing from full trace", trial, oid, id)
				}
			}
		}
	}
}

// TestOptimizerPreservesResultsAndProvenance: for random pipelines, the
// optimized plan produces the same result multiset, and tracing a random
// result item reaches the same raw input items.
func TestOptimizerPreservesResultsAndProvenance(t *testing.T) {
	const trials = 40
	optimizedAtLeastOnce := false
	for trial := 0; trial < trials; trial++ {
		r := rand.New(rand.NewSource(int64(3000 + trial)))
		values := randDataset(r, 20+r.Intn(20))
		pipe := randPipeline(r)
		opt, rules, err := engine.Optimize(pipe)
		if err != nil {
			t.Fatalf("trial %d: optimize: %v\nplan:\n%s", trial, err, pipe)
		}
		if len(rules) > 0 {
			optimizedAtLeastOnce = true
		}
		runOne := func(p *engine.Pipeline) (*engine.Result, *provenance.Run) {
			gen := engine.NewIDGen(1)
			inputs := map[string]*engine.Dataset{"in": engine.NewDataset("in", values, 3, gen)}
			res, run, err := provenance.Capture(p, inputs, engine.Options{Partitions: 3})
			if err != nil {
				t.Fatalf("trial %d: %v\nplan:\n%s", trial, err, p)
			}
			return res, run
		}
		origRes, origRun := runOne(pipe)
		optRes, optRun := runOne(opt)
		// Result multisets match.
		a := normalizeAll(origRes.Output.Values())
		b := normalizeAll(optRes.Output.Values())
		if len(a) != len(b) {
			t.Fatalf("trial %d: row counts %d vs %d\nrules: %v\noriginal:\n%s\noptimized:\n%s",
				trial, len(a), len(b), rules, pipe, opt)
		}
		for i := range a {
			if !nested.Equal(a[i], b[i]) {
				t.Fatalf("trial %d: row %d differs after optimization\nrules: %v", trial, i, rules)
			}
		}
		// Provenance of a random item matches (as raw-input id sets).
		if origRes.Output.Len() == 0 {
			continue
		}
		pick := r.Intn(origRes.Output.Len())
		origIDs := traceOrigIDs(t, pipe, origRes, origRun, pick)
		// Find the matching optimized row by value.
		want := normalize(origRes.Output.Rows()[pick].Value)
		optPick := -1
		for i, row := range optRes.Output.Rows() {
			if nested.Equal(normalize(row.Value), want) {
				optPick = i
				break
			}
		}
		if optPick < 0 {
			t.Fatalf("trial %d: optimized result misses row %s", trial, want)
		}
		optIDs := traceOrigIDs(t, opt, optRes, optRun, optPick)
		if len(origIDs) != len(optIDs) {
			t.Fatalf("trial %d: traced %d vs %d inputs after optimization\nrules: %v\nplan:\n%s",
				trial, len(origIDs), len(optIDs), rules, pipe)
		}
		for id := range origIDs {
			if !optIDs[id] {
				t.Errorf("trial %d: optimized trace misses input %d (rules %v)", trial, id, rules)
			}
		}
	}
	if !optimizedAtLeastOnce {
		t.Error("no random pipeline triggered any optimization rule — generator too weak")
	}
}

func normalizeAll(vals []nested.Value) []nested.Value {
	out := make([]nested.Value, len(vals))
	for i, v := range vals {
		out[i] = normalize(v)
	}
	sortValues(out)
	return out
}

func sortValues(vals []nested.Value) {
	sort.Slice(vals, func(i, j int) bool { return nested.Compare(vals[i], vals[j]) < 0 })
}

// traceOrigIDs full-traces one result row to raw-input id set.
func traceOrigIDs(t *testing.T, pipe *engine.Pipeline, res *engine.Result, run *provenance.Run, rowIdx int) map[int64]bool {
	t.Helper()
	row := res.Output.Rows()[rowIdx]
	b := backtrace.NewStructure()
	b.Add(row.ID, core.TreeFromValue(row.Value))
	traced, err := backtrace.Trace(run, pipe.Sink().ID(), b)
	if err != nil {
		t.Fatal(err)
	}
	out := map[int64]bool{}
	for oid, s := range traced.BySource {
		op, _ := run.Op(oid)
		toOrig := map[int64]int64{}
		for _, sa := range op.SourceIDs {
			toOrig[sa.ID] = sa.OrigID
		}
		for _, it := range s.Items {
			out[toOrig[it.ID]] = true
		}
	}
	return out
}
