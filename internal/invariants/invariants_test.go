// Package invariants property-tests the whole stack on randomly generated
// pipelines: the paper's central correctness claim — the contributing data
// returned by backtracing suffices to reproduce the queried result items —
// plus structural invariants of the captured provenance.
//
// The pipeline/dataset generator lives in internal/corpus (shared with the
// differential oracle, the fuzz targets, and the cmd/oracle soak runner);
// this suite consumes generated specs and checks eager capture in depth.
package invariants

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"pebble/internal/backtrace"
	"pebble/internal/core"
	"pebble/internal/corpus"
	"pebble/internal/engine"
	"pebble/internal/nested"
	"pebble/internal/provenance"
)

// buildSpec generates the corpus spec for a seed and builds its pipeline.
func buildSpec(t *testing.T, seed int64) (*corpus.Spec, *engine.Pipeline) {
	t.Helper()
	spec := corpus.Generate(seed)
	pipe, err := spec.Build()
	if err != nil {
		t.Fatalf("seed %d: build: %v", seed, err)
	}
	return spec, pipe
}

// TestSufficiencyInvariant is the paper's central correctness property: for
// a random pipeline and a random queried result item, re-running the
// pipeline on only the contributing input items reproduces the queried item.
// Specs with joins exercise the multi-dataset case: every source dataset is
// reduced to its contributing rows independently.
func TestSufficiencyInvariant(t *testing.T) {
	const trials = 60
	checked := 0
	for trial := 0; trial < trials; trial++ {
		seed := int64(1000 + trial)
		spec, pipe := buildSpec(t, seed)
		if !spec.AggOutputsReachSink() {
			// When a projection drops an aggregate's output, queries address
			// only the grouping key and Alg. 4 deliberately marks no group
			// member relevant (Ex. 6.6) — sufficiency is not promised there.
			continue
		}
		checked++
		r := rand.New(rand.NewSource(seed))
		inputs := spec.Inputs(3)
		res, run, err := provenance.Capture(pipe, inputs, spec.ExecOptions(engine.Options{Partitions: 3}))
		if err != nil {
			t.Fatalf("trial %d: capture: %v\nplan:\n%s", trial, err, pipe)
		}
		rows := res.Output.Rows()
		if len(rows) == 0 {
			continue // pipeline filtered everything; nothing to check
		}
		row := rows[r.Intn(len(rows))]
		b := backtrace.NewStructure()
		b.Add(row.ID, core.TreeFromValue(row.Value))
		traced, err := backtrace.Trace(run, pipe.Sink().ID(), b)
		if err != nil {
			t.Fatalf("trial %d: trace: %v\nplan:\n%s", trial, err, pipe)
		}
		// Collect the contributing raw-input ids per source dataset.
		keep := map[string]map[int64]bool{}
		total := 0
		for oid, s := range traced.BySource {
			op, ok := run.Op(oid)
			if !ok {
				t.Fatalf("trial %d: traced unknown source %d", trial, oid)
			}
			name := op.Inputs[0].SourceName
			if keep[name] == nil {
				keep[name] = map[int64]bool{}
			}
			toOrig := map[int64]int64{}
			for _, sa := range op.SourceIDs {
				toOrig[sa.ID] = sa.OrigID
			}
			for _, it := range s.Items {
				orig, ok := toOrig[it.ID]
				if !ok {
					t.Fatalf("trial %d: traced id %d missing in source %d", trial, it.ID, oid)
				}
				keep[name][orig] = true
				total++
			}
		}
		if total == 0 {
			t.Errorf("trial %d: queried item has no provenance\nplan:\n%s", trial, pipe)
			continue
		}
		// Re-run on the reduced inputs: every dataset keeps only its
		// contributing rows (an untraced dataset keeps none).
		gen2 := engine.NewIDGen(1)
		reducedInputs := map[string]*engine.Dataset{}
		for _, name := range sortedNames(inputs) {
			var reduced []nested.Value
			for _, ir := range inputs[name].Rows() {
				if keep[name][ir.ID] {
					reduced = append(reduced, ir.Value)
				}
			}
			reducedInputs[name] = engine.NewDataset(name, reduced, 3, gen2)
		}
		res2, err := engine.Run(pipe, reducedInputs, spec.ExecOptions(engine.Options{Partitions: 3}))
		if err != nil {
			t.Fatalf("trial %d: reduced run: %v", trial, err)
		}
		// Collection element order depends on how rows land in partitions,
		// which the reduced run redistributes; compare order-insensitively.
		want := normalize(row.Value)
		found := false
		for _, r2 := range res2.Output.Rows() {
			if nested.Equal(normalize(r2.Value), want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("trial %d: reduced input does not reproduce the queried item\nitem: %s\nplan:\n%s",
				trial, row.Value, pipe)
		}
	}
	if checked < trials/2 {
		t.Fatalf("only %d/%d trials were eligible; the generator shape drifted", checked, trials)
	}
}

func sortedNames(inputs map[string]*engine.Dataset) []string {
	out := make([]string, 0, len(inputs))
	for name := range inputs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// normalize sorts every (transitively) contained collection so values can be
// compared independently of partition-induced element order.
func normalize(v nested.Value) nested.Value {
	switch v.Kind() {
	case nested.KindItem:
		fields := make([]nested.Field, v.NumFields())
		for i, f := range v.Fields() {
			fields[i] = nested.F(f.Name, normalize(f.Value))
		}
		return nested.Item(fields...)
	case nested.KindBag, nested.KindSet:
		elems := make([]nested.Value, len(v.Elems()))
		for i, e := range v.Elems() {
			elems[i] = normalize(e)
		}
		return nested.Bag(elems...).SortElems()
	default:
		return v
	}
}

// TestAssociationClosureInvariant checks on random pipelines that every
// input identifier recorded by an operator was produced by its predecessor
// and every result row has an association.
func TestAssociationClosureInvariant(t *testing.T) {
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		spec, pipe := buildSpec(t, int64(5000+trial))
		res, run, err := provenance.Capture(pipe, spec.Inputs(2), spec.ExecOptions(engine.Options{Partitions: 2}))
		if err != nil {
			t.Fatalf("trial %d: %v\nplan:\n%s", trial, err, pipe)
		}
		produced := map[int]map[int64]bool{}
		for _, op := range run.Operators() {
			ids := map[int64]bool{}
			for _, a := range op.Unary {
				ids[a.Out] = true
			}
			for _, a := range op.Binary {
				ids[a.Out] = true
			}
			for _, a := range op.Flatten {
				ids[a.Out] = true
			}
			for _, a := range op.Agg {
				ids[a.Out] = true
			}
			for _, sa := range op.SourceIDs {
				ids[sa.ID] = true
			}
			produced[op.OID] = ids
		}
		for _, op := range run.Operators() {
			if op.Type == engine.OpSource {
				continue
			}
			check := func(id int64, inputIdx int) {
				if id == -1 {
					return
				}
				if !produced[op.Inputs[inputIdx].Pred][id] {
					t.Errorf("trial %d: op %d consumes unknown id %d\nplan:\n%s", trial, op.OID, id, pipe)
				}
			}
			for _, a := range op.Unary {
				check(a.In, 0)
			}
			for _, a := range op.Binary {
				check(a.Left, 0)
				check(a.Right, 1)
			}
			for _, a := range op.Flatten {
				check(a.In, 0)
			}
			for _, a := range op.Agg {
				for _, id := range a.Ins {
					check(id, 0)
				}
			}
		}
		sinkIDs := produced[pipe.Sink().ID()]
		for _, row := range res.Output.Rows() {
			if !sinkIDs[row.ID] {
				t.Errorf("trial %d: result row %d lacks an association", trial, row.ID)
			}
		}
	}
}

// TestDeterminismInvariant: the engine's output (values and order) is
// deterministic across runs and independent of capture.
func TestDeterminismInvariant(t *testing.T) {
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		spec, pipe := buildSpec(t, int64(9000+trial))
		runOnce := func(capture bool) []nested.Value {
			inputs := spec.Inputs(3)
			var res *engine.Result
			var err error
			if capture {
				res, _, err = provenance.Capture(pipe, inputs, spec.ExecOptions(engine.Options{Partitions: 3}))
			} else {
				res, err = engine.Run(pipe, inputs, spec.ExecOptions(engine.Options{Partitions: 3}))
			}
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			return res.Output.Values()
		}
		a, b, c := runOnce(false), runOnce(false), runOnce(true)
		if len(a) != len(b) || len(a) != len(c) {
			t.Fatalf("trial %d: nondeterministic row counts %d/%d/%d\nplan:\n%s",
				trial, len(a), len(b), len(c), pipe)
		}
		for i := range a {
			if !nested.Equal(a[i], b[i]) {
				t.Errorf("trial %d: row %d differs across runs", trial, i)
			}
			if !nested.Equal(a[i], c[i]) {
				t.Errorf("trial %d: row %d differs with capture enabled", trial, i)
			}
		}
	}
}

// TestBacktraceTotalCoverage: tracing the full result covers a superset of
// each single-item trace.
func TestBacktraceTotalCoverage(t *testing.T) {
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		spec, pipe := buildSpec(t, int64(7000+trial))
		res, run, err := provenance.Capture(pipe, spec.Inputs(2), spec.ExecOptions(engine.Options{Partitions: 2}))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rows := res.Output.Rows()
		if len(rows) == 0 {
			continue
		}
		all := backtrace.NewStructure()
		for _, row := range rows {
			all.Add(row.ID, core.TreeFromValue(row.Value))
		}
		allTraced, err := backtrace.Trace(run, pipe.Sink().ID(), all)
		if err != nil {
			t.Fatal(err)
		}
		allIDs := map[string]bool{}
		for oid, s := range allTraced.BySource {
			for _, id := range s.IDs() {
				allIDs[fmt.Sprintf("%d/%d", oid, id)] = true
			}
		}
		one := backtrace.NewStructure()
		one.Add(rows[0].ID, core.TreeFromValue(rows[0].Value))
		oneTraced, err := backtrace.Trace(run, pipe.Sink().ID(), one)
		if err != nil {
			t.Fatal(err)
		}
		for oid, s := range oneTraced.BySource {
			for _, id := range s.IDs() {
				if !allIDs[fmt.Sprintf("%d/%d", oid, id)] {
					t.Errorf("trial %d: single-item trace found %d/%d missing from full trace", trial, oid, id)
				}
			}
		}
	}
}

// TestOptimizerPreservesResultsAndProvenance: for random pipelines, the
// optimized plan produces the same result multiset, and tracing a random
// result item reaches the same raw input items.
func TestOptimizerPreservesResultsAndProvenance(t *testing.T) {
	const trials = 40
	optimizedAtLeastOnce := false
	for trial := 0; trial < trials; trial++ {
		seed := int64(3000 + trial)
		spec, pipe := buildSpec(t, seed)
		r := rand.New(rand.NewSource(seed))
		opt, rules, err := engine.Optimize(pipe)
		if err != nil {
			t.Fatalf("trial %d: optimize: %v\nplan:\n%s", trial, err, pipe)
		}
		if len(rules) > 0 {
			optimizedAtLeastOnce = true
		}
		runOne := func(p *engine.Pipeline) (*engine.Result, *provenance.Run) {
			res, run, err := provenance.Capture(p, spec.Inputs(3), spec.ExecOptions(engine.Options{Partitions: 3}))
			if err != nil {
				t.Fatalf("trial %d: %v\nplan:\n%s", trial, err, p)
			}
			return res, run
		}
		origRes, origRun := runOne(pipe)
		optRes, optRun := runOne(opt)
		// Result multisets match.
		a := normalizeAll(origRes.Output.Values())
		b := normalizeAll(optRes.Output.Values())
		if len(a) != len(b) {
			t.Fatalf("trial %d: row counts %d vs %d\nrules: %v\noriginal:\n%s\noptimized:\n%s",
				trial, len(a), len(b), rules, pipe, opt)
		}
		for i := range a {
			if !nested.Equal(a[i], b[i]) {
				t.Fatalf("trial %d: row %d differs after optimization\nrules: %v", trial, i, rules)
			}
		}
		// Provenance of a random item matches (as raw-input id sets).
		if origRes.Output.Len() == 0 {
			continue
		}
		pick := r.Intn(origRes.Output.Len())
		origIDs := traceOrigIDs(t, pipe, origRes, origRun, pick)
		// Find a matching optimized row: duplicates of one value can carry
		// different provenance (e.g. two identical aux rows joining the same
		// left row), so among the value-equal candidates one must trace to
		// the same raw-input id set.
		want := normalize(origRes.Output.Rows()[pick].Value)
		candidates := 0
		matched := false
		for i, row := range optRes.Output.Rows() {
			if !nested.Equal(normalize(row.Value), want) {
				continue
			}
			candidates++
			if sameIDSet(origIDs, traceOrigIDs(t, opt, optRes, optRun, i)) {
				matched = true
				break
			}
		}
		if candidates == 0 {
			t.Fatalf("trial %d: optimized result misses row %s", trial, want)
		}
		if !matched {
			t.Errorf("trial %d: no optimized duplicate of the queried row traces to the same inputs (rules %v)\nplan:\n%s",
				trial, rules, pipe)
		}
	}
	if !optimizedAtLeastOnce {
		t.Error("no random pipeline triggered any optimization rule — generator too weak")
	}
}

func sameIDSet(a, b map[int64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for id := range a {
		if !b[id] {
			return false
		}
	}
	return true
}

func normalizeAll(vals []nested.Value) []nested.Value {
	out := make([]nested.Value, len(vals))
	for i, v := range vals {
		out[i] = normalize(v)
	}
	sortValues(out)
	return out
}

func sortValues(vals []nested.Value) {
	sort.Slice(vals, func(i, j int) bool { return nested.Compare(vals[i], vals[j]) < 0 })
}

// traceOrigIDs full-traces one result row to its raw-input id set.
func traceOrigIDs(t *testing.T, pipe *engine.Pipeline, res *engine.Result, run *provenance.Run, rowIdx int) map[int64]bool {
	t.Helper()
	row := res.Output.Rows()[rowIdx]
	b := backtrace.NewStructure()
	b.Add(row.ID, core.TreeFromValue(row.Value))
	traced, err := backtrace.Trace(run, pipe.Sink().ID(), b)
	if err != nil {
		t.Fatal(err)
	}
	out := map[int64]bool{}
	for oid, s := range traced.BySource {
		op, _ := run.Op(oid)
		toOrig := map[int64]int64{}
		for _, sa := range op.SourceIDs {
			toOrig[sa.ID] = sa.OrigID
		}
		for _, it := range s.Items {
			out[toOrig[it.ID]] = true
		}
	}
	return out
}
