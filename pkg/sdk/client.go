package sdk

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// APIError is a non-2xx daemon response. For 429 (queue full) RetryAfter
// carries the server's backpressure hint.
type APIError struct {
	Status     int
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("pebbled: %s (http %d)", e.Message, e.Status)
	}
	return fmt.Sprintf("pebbled: http %d", e.Status)
}

// IsQueueFull reports whether err is the daemon's admission-control
// rejection (HTTP 429); the client should back off by err.RetryAfter.
func IsQueueFull(err error) (*APIError, bool) {
	var ae *APIError
	if errors.As(err, &ae) && ae.Status == http.StatusTooManyRequests {
		return ae, true
	}
	return nil, false
}

// Client is a pebbled API client. The zero value is not usable; construct
// with New.
type Client struct {
	base string
	http *http.Client
	// PollInterval paces WaitJob's status polling (default 25ms).
	PollInterval time.Duration
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (e.g. one with a
// transport bound to a test listener).
func WithHTTPClient(h *http.Client) ClientOption { return func(c *Client) { c.http = h } }

// New builds a client for a daemon at baseURL (e.g. "http://127.0.0.1:7077").
func New(baseURL string, opts ...ClientOption) *Client {
	c := &Client{
		base:         trimSlash(baseURL),
		http:         &http.Client{},
		PollInterval: 25 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

func trimSlash(s string) string {
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}

// do issues one request and decodes a JSON response into out (when out is
// non-nil). Non-2xx responses become *APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	resp, err := c.raw(ctx, method, path, "", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// raw issues one request and returns the (2xx) response; the caller owns
// the body. contentType defaults to application/json for non-nil bodies.
func (c *Client) raw(ctx context.Context, method, path, contentType string, body any) (*http.Response, error) {
	var rd io.Reader
	switch b := body.(type) {
	case nil:
	case io.Reader:
		rd = b
	default:
		data, err := json.Marshal(body)
		if err != nil {
			return nil, fmt.Errorf("sdk: encode request: %w", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if rd != nil {
		if contentType == "" {
			contentType = "application/json"
		}
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		defer resp.Body.Close()
		ae := &APIError{Status: resp.StatusCode}
		var env apiError
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&env); err == nil {
			ae.Message = env.Error
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil {
				ae.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return nil, ae
	}
	return resp, nil
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) (HealthInfo, error) {
	var h HealthInfo
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// Stats fetches the /stats aggregates.
func (c *Client) Stats(ctx context.Context) (ServerStats, error) {
	var s ServerStats
	err := c.do(ctx, http.MethodGet, "/stats", nil, &s)
	return s, err
}

// CreateSession registers a named session.
func (c *Client) CreateSession(ctx context.Context, spec SessionSpec) (SessionInfo, error) {
	var info SessionInfo
	err := c.do(ctx, http.MethodPost, "/v1/sessions", spec, &info)
	return info, err
}

// ListSessions lists all sessions, sorted by name.
func (c *Client) ListSessions(ctx context.Context) ([]SessionInfo, error) {
	var out []SessionInfo
	err := c.do(ctx, http.MethodGet, "/v1/sessions", nil, &out)
	return out, err
}

// GetSession fetches one session.
func (c *Client) GetSession(ctx context.Context, name string) (SessionInfo, error) {
	var info SessionInfo
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(name), nil, &info)
	return info, err
}

// UploadDataset registers a dataset from a JSON-lines stream (one nested
// value per line). parts <= 0 inherits the session's partition count.
func (c *Client) UploadDataset(ctx context.Context, session, name string, parts int, jsonLines io.Reader) (DatasetInfo, error) {
	p := fmt.Sprintf("/v1/sessions/%s/datasets?name=%s&parts=%d",
		url.PathEscape(session), url.QueryEscape(name), parts)
	resp, err := c.raw(ctx, http.MethodPost, p, "application/jsonl", jsonLines)
	if err != nil {
		return DatasetInfo{}, err
	}
	defer resp.Body.Close()
	var info DatasetInfo
	err = json.NewDecoder(resp.Body).Decode(&info)
	return info, err
}

// SubmitJob enqueues a job; the returned JobInfo is its queued snapshot.
// When the daemon's queue is full the error is an *APIError with Status
// 429 and a RetryAfter hint (see IsQueueFull).
func (c *Client) SubmitJob(ctx context.Context, session string, req SubmitJobRequest) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(session)+"/jobs", req, &info)
	return info, err
}

// GetJob fetches one job's current state.
func (c *Client) GetJob(ctx context.Context, session, id string) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodGet, c.jobPath(session, id, ""), nil, &info)
	return info, err
}

// ListJobs lists the session's jobs in submission order.
func (c *Client) ListJobs(ctx context.Context, session string) ([]JobInfo, error) {
	var out []JobInfo
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(session)+"/jobs", nil, &out)
	return out, err
}

// CancelJob requests cancellation. Queued jobs cancel immediately; running
// jobs stop scheduling new morsels and transition to cancelled when the
// engine unwinds. The returned snapshot may still read "running".
func (c *Client) CancelJob(ctx context.Context, session, id string) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodPost, c.jobPath(session, id, "/cancel"), nil, &info)
	return info, err
}

// WaitJob polls until the job reaches a terminal status (done, failed,
// cancelled) or ctx expires.
func (c *Client) WaitJob(ctx context.Context, session, id string) (JobInfo, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 25 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		info, err := c.GetJob(ctx, session, id)
		if err != nil {
			return info, err
		}
		if TerminalStatus(info.Status) {
			return info, nil
		}
		select {
		case <-ctx.Done():
			return info, ctx.Err()
		case <-t.C:
		}
	}
}

// StreamEvents follows the job's progress events as they happen, invoking
// fn per event in order. It returns when the job reaches a terminal status
// (nil), fn returns an error (that error), or ctx expires. The stream is
// chunked JSON lines fed live from the execution's observability spans.
func (c *Client) StreamEvents(ctx context.Context, session, id string, fn func(JobEvent) error) error {
	resp, err := c.raw(ctx, http.MethodGet, c.jobPath(session, id, "/events"), "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev JobEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("sdk: decode event: %w", err)
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	return nil
}

// Provenance downloads the serialized provenance artifact (.pbl bytes) of a
// done pipeline job — the exact bytes pebble.Provenance.WriteTo produced, so
// clients can diff daemon captures against local library runs.
func (c *Client) Provenance(ctx context.Context, session, id string) ([]byte, error) {
	resp, err := c.raw(ctx, http.MethodGet, c.jobPath(session, id, "/provenance"), "", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// TraceResult fetches the payload of a done trace job.
func (c *Client) TraceResult(ctx context.Context, session, id string) (TraceOutput, error) {
	var out TraceOutput
	err := c.do(ctx, http.MethodGet, c.jobPath(session, id, "/result"), nil, &out)
	return out, err
}

func (c *Client) jobPath(session, id, suffix string) string {
	return "/v1/sessions/" + url.PathEscape(session) + "/jobs/" + url.PathEscape(id) + suffix
}
