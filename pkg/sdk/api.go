// Package sdk is the Go client for pebbled, the provenance-as-a-service
// daemon (internal/server). It depends on the standard library only: wire
// payloads that need pebble types (tree patterns, corpus pipeline specs,
// provenance runs) travel as raw JSON or opaque bytes, so a consumer
// outside this module can drive a daemon with nothing but this package.
//
// The file defines the wire DTOs shared by the client and the server; the
// client itself lives in client.go. All fields marshal as snake_case JSON.
package sdk

import (
	"encoding/json"
	"time"
)

// Job status values. A job moves queued → running → one of the terminal
// states; cancellation can also strike while queued.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusDone      = "done"
	StatusFailed    = "failed"
	StatusCancelled = "cancelled"
)

// TerminalStatus reports whether a job status is final.
func TerminalStatus(s string) bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// Job kinds.
const (
	KindPipeline = "pipeline"
	KindTrace    = "trace"
)

// SessionSpec configures a named daemon session — the remote form of
// pebble.NewSession options. Partitions/Workers <= 0 keep the server
// defaults (precedence: explicit > session > engine default, exactly as in
// the library).
type SessionSpec struct {
	Name       string `json:"name"`
	Partitions int    `json:"partitions,omitempty"`
	Workers    int    `json:"workers,omitempty"`
	Sequential bool   `json:"sequential,omitempty"`
}

// SessionInfo describes one live session.
type SessionInfo struct {
	Name       string    `json:"name"`
	Partitions int       `json:"partitions"`
	Workers    int       `json:"workers"`
	Sequential bool      `json:"sequential,omitempty"`
	Created    time.Time `json:"created"`
	Datasets   int       `json:"datasets"`
	Jobs       int       `json:"jobs"`
}

// DatasetInfo describes one registered dataset.
type DatasetInfo struct {
	Name       string `json:"name"`
	Rows       int    `json:"rows"`
	Partitions int    `json:"partitions"`
	Bytes      int64  `json:"bytes"`
}

// SubmitJobRequest submits an asynchronous job.
//
// Pipeline jobs (Kind == KindPipeline) name their plan one of two ways:
//   - Scenario: a pipeline registered on the server by name — the built-in
//     paper scenarios T1–T5/D1–D5 (whose inputs the server generates at
//     SimGB scale) or an operator-registered factory;
//   - Spec: a corpus pipeline spec as JSON (internal/corpus.Spec wire
//     form). Source steps resolve against the session's uploaded datasets
//     first, then the spec's inline rows.
//
// Trace jobs (Kind == KindTrace) backtrace a completed pipeline job:
// TargetJob names it; the question is a tree pattern (Pattern, the
// treepattern JSON form, or PatternText, the textual grammar) or TraceAll
// for full-coverage provenance. StartOp optionally traces from an
// intermediate operator instead of the sink.
type SubmitJobRequest struct {
	Kind string `json:"kind"`

	Scenario string          `json:"scenario,omitempty"`
	SimGB    int             `json:"sim_gb,omitempty"`
	Spec     json.RawMessage `json:"spec,omitempty"`
	Capture  *bool           `json:"capture,omitempty"` // nil = true

	TargetJob   string          `json:"target_job,omitempty"`
	Pattern     json.RawMessage `json:"pattern,omitempty"`
	PatternText string          `json:"pattern_text,omitempty"`
	TraceAll    bool            `json:"trace_all,omitempty"`
	StartOp     int             `json:"start_op,omitempty"`
}

// JobInfo is the server's view of one job.
type JobInfo struct {
	ID       string     `json:"id"`
	Session  string     `json:"session"`
	Kind     string     `json:"kind"`
	Status   string     `json:"status"`
	Error    string     `json:"error,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	// ResultRows is the sink row count of a done pipeline job.
	ResultRows int `json:"result_rows,omitempty"`
	// ProvBytes is the size of the persisted provenance artifact.
	ProvBytes int64 `json:"prov_bytes,omitempty"`
	// Matched is the matched-item count of a done trace job.
	Matched int `json:"matched,omitempty"`
}

// JobEvent is one progress event of a job's lifecycle, streamed as JSON
// lines. Status transitions arrive as kind "status"; execution phases
// (schedule, collector_finish, pattern_match, backtrace, …) are fed from
// the observability layer's span taps as kind "phase_start"/"phase_end";
// operator registrations as kind "op".
type JobEvent struct {
	Seq       int       `json:"seq"`
	Time      time.Time `json:"time"`
	Kind      string    `json:"kind"`
	Status    string    `json:"status,omitempty"`
	Span      string    `json:"span,omitempty"`
	OID       int       `json:"oid,omitempty"`
	OpType    string    `json:"op_type,omitempty"`
	ElapsedMS float64   `json:"elapsed_ms,omitempty"`
	Message   string    `json:"message,omitempty"`
}

// TraceOutput is the payload of a completed trace job.
type TraceOutput struct {
	// Matched is the number of result items the pattern selected.
	Matched int `json:"matched"`
	// Report is the human-readable backtracing report
	// (pebble.QueryResult.Report).
	Report string `json:"report"`
	// Result is the machine form (pebble.QueryResult.JSON).
	Result json.RawMessage `json:"result"`
}

// SessionStats aggregates a session's completed work for /stats.
type SessionStats struct {
	Name     string             `json:"name"`
	Datasets int                `json:"datasets"`
	Jobs     map[string]int     `json:"jobs"`
	Counters map[string]int64   `json:"counters"`
	SpansMS  map[string]float64 `json:"spans_ms"`
}

// ServerStats is the /stats payload: admission-control gauges plus
// per-session aggregates backed by the per-job metric recorders.
type ServerStats struct {
	UptimeSeconds float64        `json:"uptime_seconds"`
	Queued        int            `json:"queued"`
	Running       int            `json:"running"`
	QueueDepth    int            `json:"queue_depth"`
	SessionCap    int            `json:"session_cap"`
	Jobs          map[string]int `json:"jobs"`
	Sessions      []SessionStats `json:"sessions"`
}

// HealthInfo is the /healthz payload.
type HealthInfo struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// apiError is the JSON error envelope every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}
