package sdk

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestAPIErrorDecoding pins the error surface: non-2xx responses become
// *APIError with the server's message, and 429 carries the Retry-After
// hint through IsQueueFull.
func TestAPIErrorDecoding(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/sessions/s/jobs":
			w.Header().Set("Retry-After", "3")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error": "job queue full"}`)) //nolint:errcheck
		default:
			w.WriteHeader(http.StatusNotFound)
			w.Write([]byte(`{"error": "unknown session"}`)) //nolint:errcheck
		}
	}))
	defer ts.Close()
	c := New(ts.URL + "/") // trailing slash must not double up

	_, err := c.SubmitJob(context.Background(), "s", SubmitJobRequest{Kind: KindPipeline, Scenario: "x"})
	ae, full := IsQueueFull(err)
	if !full {
		t.Fatalf("err = %v, want queue-full APIError", err)
	}
	if ae.RetryAfter != 3*time.Second {
		t.Errorf("RetryAfter = %v, want 3s", ae.RetryAfter)
	}
	if ae.Message != "job queue full" {
		t.Errorf("Message = %q", ae.Message)
	}

	_, err = c.GetJob(context.Background(), "s", "j1")
	if ae, ok := err.(*APIError); !ok || ae.Status != http.StatusNotFound || ae.Message != "unknown session" {
		t.Errorf("err = %v (%T), want 404 APIError with message", err, err)
	}
	if _, full := IsQueueFull(err); full {
		t.Error("404 misclassified as queue-full")
	}
}

// TestTerminalStatus pins the status machine's terminal set.
func TestTerminalStatus(t *testing.T) {
	for _, s := range []string{StatusDone, StatusFailed, StatusCancelled} {
		if !TerminalStatus(s) {
			t.Errorf("TerminalStatus(%q) = false", s)
		}
	}
	for _, s := range []string{StatusQueued, StatusRunning, ""} {
		if TerminalStatus(s) {
			t.Errorf("TerminalStatus(%q) = true", s)
		}
	}
}
