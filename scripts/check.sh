#!/bin/sh
# Repo-wide quality gate: vet, formatting, and the full test suite under the
# race detector (the DAG scheduler, worker pool, and parallel shuffle are
# concurrency-heavy — see internal/engine/schedule.go). Run from the repo
# root; `make check` wraps this script.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go vet -vettool=pebblevet ./..."
go build -o bin/pebblevet ./cmd/pebblevet
go vet -vettool=bin/pebblevet ./...

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go test -race ./..."
go test -race ./...

echo "== pebbled serve smoke (SDK vs library byte-identity)"
go run ./cmd/pebbled -smoke T3
go run ./cmd/pebbled -smoke D1

# Opt-in observability overhead gate (wall-clock benchmark, so not part of
# the default gate): PEBBLE_BENCH_OVERHEAD=1 make check
if [ "${PEBBLE_BENCH_OVERHEAD:-0}" = "1" ]; then
	echo "== benchrunner -exp overheadgate"
	go run ./cmd/benchrunner -exp overheadgate -gb 50 -reps 5 -gate-pct 2
fi

echo "OK"
