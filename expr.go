package pebble

import "pebble/internal/engine"

// Expr is an expression over one data item; expressions report the access
// paths they read so operators can capture structural provenance.
type Expr = engine.Expr

// Col returns an expression reading the given access path (e.g.
// "user.id_str"); it panics on malformed paths.
func Col(p string) Expr { return engine.Col(p) }

// Lit returns a constant expression.
func Lit(v Value) Expr { return engine.Lit(v) }

// LitInt returns an integer literal expression.
func LitInt(v int64) Expr { return engine.LitInt(v) }

// LitDouble returns a floating-point literal expression.
func LitDouble(v float64) Expr { return engine.LitDouble(v) }

// LitString returns a string literal expression.
func LitString(v string) Expr { return engine.LitString(v) }

// LitBool returns a boolean literal expression.
func LitBool(v bool) Expr { return engine.LitBool(v) }

// Eq returns l == r (null comparisons are false).
func Eq(l, r Expr) Expr { return engine.Eq(l, r) }

// Ne returns l != r.
func Ne(l, r Expr) Expr { return engine.Ne(l, r) }

// Lt returns l < r.
func Lt(l, r Expr) Expr { return engine.Lt(l, r) }

// Le returns l <= r.
func Le(l, r Expr) Expr { return engine.Le(l, r) }

// Gt returns l > r.
func Gt(l, r Expr) Expr { return engine.Gt(l, r) }

// Ge returns l >= r.
func Ge(l, r Expr) Expr { return engine.Ge(l, r) }

// And returns the conjunction of the operands.
func And(operands ...Expr) Expr { return engine.And(operands...) }

// Or returns the disjunction of the operands.
func Or(operands ...Expr) Expr { return engine.Or(operands...) }

// Not returns the negation of a boolean expression.
func Not(e Expr) Expr { return engine.Not(e) }

// Contains reports whether the string value of str contains substr.
func Contains(str, substr Expr) Expr { return engine.Contains(str, substr) }

// IsNull reports whether the operand evaluates to null.
func IsNull(e Expr) Expr { return engine.IsNull(e) }

// Len returns the element count of a collection-valued operand.
func Len(e Expr) Expr { return engine.Len(e) }
