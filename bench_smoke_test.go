// Smoke coverage for the benchmark suite: benchmarks only compile-check
// under `go test` and their bodies never run, so a broken benchmark slips
// through the tier-1 gate until someone runs `make bench`. TestBenchSmoke
// re-executes this test binary with -test.bench and a single iteration,
// proving every benchmark family still runs end to end.
package pebble_test

import (
	"os"
	"os/exec"
	"regexp"
	"strings"
	"testing"
)

func TestBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke is slow; skipped in -short mode")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	// -test.run=^$ keeps the subprocess from re-running the tests (and this
	// smoke test); only benchmarks execute, one iteration each.
	cmd := exec.Command(exe,
		"-test.run=^$", "-test.bench=.", "-test.benchtime=1x", "-test.timeout=10m")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("benchmark run failed: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "PASS") || strings.Contains(s, "--- FAIL") {
		t.Fatalf("benchmark run did not pass:\n%s", s)
	}
	// Every benchmark family of the paper's evaluation must have reported at
	// least one timing line.
	for _, name := range []string{
		"BenchmarkFig6CaptureOverheadTwitter",
		"BenchmarkFig7CaptureOverheadDBLP",
		"BenchmarkFig8aProvenanceSizeTwitter",
		"BenchmarkFig8bProvenanceSizeDBLP",
		"BenchmarkFig9aQueryTwitter",
		"BenchmarkFig9bQueryDBLP",
		"BenchmarkTitianComparison",
		"BenchmarkPerOperatorOverhead",
		"BenchmarkBacktraceRunningExample",
		"BenchmarkAblationCaptureMode",
		"BenchmarkAblationTracerReuse",
		"BenchmarkAblationPartitions",
		"BenchmarkScalingWorkers",
		"BenchmarkProvenanceCodec",
	} {
		if !strings.Contains(s, name) {
			t.Errorf("benchmark %s produced no output", name)
		}
	}
	if n := len(regexp.MustCompile(`(?m)^Benchmark`).FindAllString(s, -1)); n < 14 {
		t.Errorf("only %d benchmark timing lines, want >= 14:\n%s", n, s)
	}
}
