package pebble

import "pebble/internal/engine"

// SelectField is one projection of a select operator.
type SelectField = engine.SelectField

// MapFunc is an opaque user-defined transformation for the map operator.
type MapFunc = engine.MapFunc

// GroupKey is one grouping attribute of an aggregation.
type GroupKey = engine.GroupKey

// AggSpec is one aggregation function application.
type AggSpec = engine.AggSpec

// AggFunc enumerates aggregation functions.
type AggFunc = engine.AggFunc

// The aggregation functions: Count, Sum, Max, Min and Avg return constants;
// CollectList and CollectSet nest their inputs into collections.
const (
	AggCount       = engine.AggCount
	AggSum         = engine.AggSum
	AggMax         = engine.AggMax
	AggMin         = engine.AggMin
	AggAvg         = engine.AggAvg
	AggCollectList = engine.AggCollectList
	AggCollectSet  = engine.AggCollectSet
)

// Column returns a projection of an access path under the given output name.
func Column(name, col string) SelectField { return engine.Column(name, col) }

// StructField returns a projection constructing a nested item from fields —
// the <id_str, name> → user form of the paper's Fig. 1.
func StructField(name string, fields ...SelectField) SelectField {
	return engine.StructField(name, fields...)
}

// Computed returns a projection evaluating an expression; its provenance
// records accesses but no manipulation mapping.
func Computed(name string, e Expr) SelectField { return engine.Computed(name, e) }

// Key returns a GroupKey grouping by the given access path, named after the
// path's last attribute.
func Key(col string) GroupKey { return engine.Key(col) }

// KeyAs returns a GroupKey with an explicit output name.
func KeyAs(name, col string) GroupKey { return engine.KeyAs(name, col) }

// Agg returns an AggSpec applying fn to the values at col, output as out.
// col may be empty for AggCount.
func Agg(fn AggFunc, col, out string) AggSpec { return engine.Agg(fn, col, out) }
