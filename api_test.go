package pebble_test

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"pebble"
)

// TestExpressionShims exercises every expression constructor of the public
// API against a sample item.
func TestExpressionShims(t *testing.T) {
	d := pebble.Item(
		pebble.F("n", pebble.Int(5)),
		pebble.F("s", pebble.String("hello world")),
		pebble.F("b", pebble.Bool(true)),
		pebble.F("f", pebble.Double(2.5)),
		pebble.F("tags", pebble.Bag(pebble.String("x"))),
	)
	truthy := []pebble.Expr{
		pebble.Eq(pebble.Col("n"), pebble.LitInt(5)),
		pebble.Ne(pebble.Col("n"), pebble.LitInt(6)),
		pebble.Lt(pebble.Col("n"), pebble.LitInt(6)),
		pebble.Le(pebble.Col("n"), pebble.LitInt(5)),
		pebble.Gt(pebble.Col("f"), pebble.LitDouble(2.0)),
		pebble.Ge(pebble.Col("f"), pebble.LitDouble(2.5)),
		pebble.And(pebble.LitBool(true), pebble.Col("b")),
		pebble.Or(pebble.LitBool(false), pebble.Col("b")),
		pebble.Not(pebble.LitBool(false)),
		pebble.Contains(pebble.Col("s"), pebble.LitString("world")),
		pebble.IsNull(pebble.Col("missing")),
		pebble.Eq(pebble.Len(pebble.Col("tags")), pebble.LitInt(1)),
		pebble.Eq(pebble.Lit(pebble.Int(1)), pebble.LitInt(1)),
		pebble.Eq(pebble.Col("s"), pebble.LitString("hello world")),
	}
	for _, e := range truthy {
		v, err := e.Eval(d)
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		if b, _ := v.AsBool(); !b {
			t.Errorf("%s evaluated to false", e)
		}
	}
}

// TestOperatorShims builds a pipeline through every public builder and runs
// it end to end, including the extension operators.
func TestOperatorShims(t *testing.T) {
	values := []pebble.Value{
		pebble.Item(pebble.F("cat", pebble.String("a")), pebble.F("v", pebble.Int(3)),
			pebble.F("tags", pebble.Bag(pebble.String("t1"), pebble.String("t2")))),
		pebble.Item(pebble.F("cat", pebble.String("a")), pebble.F("v", pebble.Int(1)),
			pebble.F("tags", pebble.Bag(pebble.String("t1")))),
		pebble.Item(pebble.F("cat", pebble.String("b")), pebble.F("v", pebble.Int(2)),
			pebble.F("tags", pebble.Bag(pebble.String("t3")))),
	}
	inputs := map[string]*pebble.Dataset{"in": pebble.NewDataset("in", values, 2)}
	p := pebble.NewPipeline()
	src := p.Source("in")
	flt := p.Filter(src, pebble.Gt(pebble.Col("v"), pebble.LitInt(0)))
	fl := p.Flatten(flt, "tags", "tag")
	sel := p.Select(fl,
		pebble.Column("cat", "cat"),
		pebble.Column("tag", "tag"),
		pebble.Computed("vplus", pebble.Len(pebble.Col("tags"))),
		pebble.StructField("wrap", pebble.Column("v", "v")),
	)
	mp := p.Map(sel, pebble.MapFunc{Name: "keep", Fn: func(v pebble.Value) (pebble.Value, error) {
		return v, nil
	}})
	agg := p.Aggregate(mp,
		[]pebble.GroupKey{pebble.Key("cat"), pebble.KeyAs("tag2", "tag")},
		[]pebble.AggSpec{
			pebble.Agg(pebble.AggCount, "", "n"),
			pebble.Agg(pebble.AggCollectSet, "tag", "tags"),
		},
	)
	dst := p.Distinct(agg)
	ord := p.OrderBy(dst, false, pebble.Col("cat"))
	p.Limit(ord, 10)

	session := pebble.Session{Partitions: 2}
	cap, err := session.Capture(p, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if cap.Result.Output.Len() == 0 {
		t.Fatal("pipeline produced nothing")
	}
	// Query everything and trace through the whole operator zoo.
	q, err := cap.QueryAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Items()) == 0 {
		t.Fatal("no traced items")
	}
	// Aggregation functions exposed as constants.
	for _, fn := range []pebble.AggFunc{pebble.AggSum, pebble.AggMax, pebble.AggMin, pebble.AggAvg, pebble.AggCollectList} {
		if fn == "" {
			t.Error("missing agg constant")
		}
	}
}

// TestUnionJoinShims covers the remaining binary builders.
func TestUnionJoinShims(t *testing.T) {
	a := []pebble.Value{pebble.Item(pebble.F("k", pebble.String("x")), pebble.F("va", pebble.Int(1)))}
	b := []pebble.Value{pebble.Item(pebble.F("j", pebble.String("x")), pebble.F("vb", pebble.Int(2)))}
	p := pebble.NewPipeline()
	l, r := p.Source("a"), p.Source("b")
	j := p.Join(l, r, pebble.Col("k"), pebble.Col("j"))
	sel := p.Select(j, pebble.Column("k", "k"))
	l2 := p.Select(p.Source("a"), pebble.Column("k", "k"))
	p.Union(sel, l2)
	inputs := map[string]*pebble.Dataset{
		"a": pebble.NewDataset("a", a, 1),
		"b": pebble.NewDataset("b", b, 1),
	}
	session := pebble.Session{Partitions: 1}
	res, err := session.Run(p, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Len() != 2 {
		t.Errorf("rows = %d, want 2", res.Output.Len())
	}
}

// TestProvenancePersistenceShims covers ReadProvenance and Trace.
func TestProvenancePersistenceShims(t *testing.T) {
	inputs := map[string]*pebble.Dataset{
		"tweets.json": pebble.NewDataset("tweets.json", tab1(), 2),
	}
	session := pebble.Session{Partitions: 2}
	cap, err := session.Capture(figure1(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := cap.Provenance.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	run, err := pebble.ReadProvenance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	row := cap.Result.Output.Rows()[0]
	b := pebble.NewStructure()
	b.Add(row.ID, pebble.TreeFromValue(row.Value))
	sink, ok := run.OpByID(pebble.OpID(cap.Pipeline.Sink().ID()))
	if !ok {
		t.Fatalf("sink operator %d missing from reloaded run", cap.Pipeline.Sink().ID())
	}
	traced, err := pebble.TraceFrom(run, sink, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(traced.ContributingIDs()) == 0 {
		t.Error("trace over reloaded run empty")
	}
}

// TestKindConstantsAndReport sanity-checks the remaining shims.
func TestKindConstantsAndReport(t *testing.T) {
	if pebble.KindNull.String() != "null" || pebble.KindItem.String() != "item" {
		t.Error("kind constants broken")
	}
	inputs := map[string]*pebble.Dataset{
		"tweets.json": pebble.NewDataset("tweets.json", tab1(), 1),
	}
	cap, err := pebble.Session{Partitions: 1}.Capture(figure1(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	q, err := cap.Query(fig4Pattern())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.Report(), "contributing") {
		t.Error("report shim broken")
	}
}

// TestParsePatternShim covers the public textual pattern entry point.
func TestParsePatternShim(t *testing.T) {
	inputs := map[string]*pebble.Dataset{
		"tweets.json": pebble.NewDataset("tweets.json", tab1(), 2),
	}
	cap, err := pebble.Session{Partitions: 2}.Capture(figure1(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	pattern, err := pebble.ParsePattern(`//id_str == "lp", tweets(text == "Hello World" #[2,2])`)
	if err != nil {
		t.Fatal(err)
	}
	q, err := cap.Query(pattern)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Items()) != 2 {
		t.Errorf("parsed pattern traced %d items, want 2", len(q.Items()))
	}
	// The where-provenance style cell view.
	for _, s := range q.Traced.BySource {
		for id, cells := range s.ContributingPaths() {
			if len(cells) == 0 {
				t.Errorf("item %d has no contributing cells", id)
			}
		}
	}
	if _, err := pebble.ParsePattern(`== bad`); err == nil {
		t.Error("bad pattern accepted")
	}
}

// TestAnalyzeShim covers the public plan-time analyzer.
func TestAnalyzeShim(t *testing.T) {
	inputs := map[string]*pebble.Dataset{
		"tweets.json": pebble.NewDataset("tweets.json", tab1(), 1),
	}
	types := pebble.InferInputTypes(inputs)
	if _, err := pebble.Analyze(figure1(), types); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	bad := pebble.NewPipeline()
	bad.Filter(bad.Source("tweets.json"), pebble.Eq(pebble.Col("tpyo"), pebble.LitInt(1)))
	if _, err := pebble.Analyze(bad, types); err == nil {
		t.Error("typo accepted")
	}
}

// TestNewSessionCoversEverySessionField is the option-completeness check:
// constructing a session with every With* option must leave no Session
// field at its zero value — a new field without a matching option fails
// here by construction.
func TestNewSessionCoversEverySessionField(t *testing.T) {
	s := pebble.NewSession(
		pebble.WithPartitions(3),
		pebble.WithWorkers(2),
		pebble.WithSequential(),
		pebble.WithAnalyzeFirst(),
		pebble.WithRecorder(pebble.NewRecorder()),
	)
	v := reflect.ValueOf(s)
	for i := 0; i < v.NumField(); i++ {
		if v.Field(i).IsZero() {
			t.Errorf("Session field %s has no covering option (still zero after all With* options)",
				v.Type().Field(i).Name)
		}
	}
	// And the struct-literal path keeps working.
	lit := pebble.Session{Partitions: 3, Workers: 2, Sequential: true, AnalyzeFirst: true, Recorder: s.Recorder}
	if lit != s {
		t.Error("NewSession with all options differs from the equivalent struct literal")
	}
}

// TestTraceFromAndOpByID covers the typed query-side entry points — plus
// the context-aware TraceFromContext variant against the same reloaded run.
func TestTraceFromAndOpByID(t *testing.T) {
	inputs := map[string]*pebble.Dataset{
		"tweets.json": pebble.NewDataset("tweets.json", tab1(), 2),
	}
	cap, err := pebble.NewSession(pebble.WithPartitions(2)).Capture(figure1(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := cap.Provenance.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	run, err := pebble.ReadProvenance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sinkID := pebble.OpID(cap.Pipeline.Sink().ID())
	op, ok := run.OpByID(sinkID)
	if !ok {
		t.Fatalf("OpByID(%d) not found after reload", sinkID)
	}
	if op.ID() != sinkID {
		t.Errorf("op.ID() = %d, want %d", op.ID(), sinkID)
	}
	row := cap.Result.Output.Rows()[0]
	b := pebble.NewStructure()
	b.Add(row.ID, pebble.TreeFromValue(row.Value))
	typed, err := pebble.TraceFrom(run, op, b)
	if err != nil {
		t.Fatal(err)
	}
	ctxTraced, err := pebble.TraceFromContext(context.Background(), run, op, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(typed.ContributingIDs()) == 0 ||
		len(typed.ContributingIDs()) != len(ctxTraced.ContributingIDs()) {
		t.Errorf("typed trace found %d ids, context variant %d",
			len(typed.ContributingIDs()), len(ctxTraced.ContributingIDs()))
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pebble.TraceFromContext(cancelled, run, op, b); err == nil {
		t.Error("TraceFromContext with cancelled context should fail")
	}
	if _, ok := run.OpByID(9999); ok {
		t.Error("OpByID(9999) resolved a phantom operator")
	}
	if _, err := pebble.TraceFrom(run, nil, b); err == nil {
		t.Error("TraceFrom(nil op) should fail")
	}
	if _, err := pebble.TraceFromContext(context.Background(), run, nil, b); err == nil {
		t.Error("TraceFromContext(nil op) should fail")
	}
}

// TestCapturedStatsPublic covers the Stats surface through the root
// package: recorder-backed snapshot with per-operator counters.
func TestCapturedStatsPublic(t *testing.T) {
	rec := pebble.NewRecorder()
	inputs := map[string]*pebble.Dataset{
		"tweets.json": pebble.NewDataset("tweets.json", tab1(), 2),
	}
	session := pebble.NewSession(pebble.WithPartitions(2), pebble.WithRecorder(rec))
	cap, err := session.Capture(figure1(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cap.Query(fig4Pattern()); err != nil {
		t.Fatal(err)
	}
	var st *pebble.Stats = cap.Stats()
	if len(st.Ops) == 0 {
		t.Fatal("no operator stats recorded")
	}
	var first pebble.OpStat = st.Ops[0]
	if first.Type != "source" {
		t.Errorf("first operator is %q, want source", first.Type)
	}
	out := st.Render(true)
	if !strings.Contains(out, "pattern_match") || !strings.Contains(out, "backtrace") {
		t.Errorf("rendered stats missing query spans:\n%s", out)
	}
}
