package pebble_test

import (
	"bytes"
	"strings"
	"testing"

	"pebble"
)

// tab1 builds the running example's input through the public API only.
func tab1() []pebble.Value {
	tweet := func(text, uid, uname string, rt int64, mentions ...[2]string) pebble.Value {
		ms := make([]pebble.Value, len(mentions))
		for i, m := range mentions {
			ms[i] = pebble.Item(pebble.F("id_str", pebble.String(m[0])), pebble.F("name", pebble.String(m[1])))
		}
		return pebble.Item(
			pebble.F("text", pebble.String(text)),
			pebble.F("user", pebble.Item(pebble.F("id_str", pebble.String(uid)), pebble.F("name", pebble.String(uname)))),
			pebble.F("user_mentions", pebble.Bag(ms...)),
			pebble.F("retweet_cnt", pebble.Int(rt)),
		)
	}
	return []pebble.Value{
		tweet("Hello @ls @jm @ls", "lp", "Lisa Paul", 0,
			[2]string{"ls", "Lauren Smith"}, [2]string{"jm", "John Miller"}, [2]string{"ls", "Lauren Smith"}),
		tweet("Hello World", "lp", "Lisa Paul", 0),
		tweet("Hello World", "lp", "Lisa Paul", 0),
		tweet("This is me @jm", "jm", "John Miller", 0, [2]string{"jm", "John Miller"}),
		tweet("Hello @lp", "jm", "John Miller", 1, [2]string{"lp", "Lisa Paul"}),
	}
}

// figure1 builds the Fig. 1 pipeline through the public API only.
func figure1() *pebble.Pipeline {
	p := pebble.NewPipeline()
	read1 := p.Source("tweets.json")
	filt := p.Filter(read1, pebble.Eq(pebble.Col("retweet_cnt"), pebble.LitInt(0)))
	sel1 := p.Select(filt,
		pebble.Column("text", "text"),
		pebble.Column("id_str", "user.id_str"),
		pebble.Column("name", "user.name"),
	)
	read2 := p.Source("tweets.json")
	flat := p.Flatten(read2, "user_mentions", "m_user")
	sel2 := p.Select(flat,
		pebble.Column("text", "text"),
		pebble.Column("id_str", "m_user.id_str"),
		pebble.Column("name", "m_user.name"),
	)
	uni := p.Union(sel1, sel2)
	sel3 := p.Select(uni,
		pebble.StructField("tweet", pebble.Column("text", "text")),
		pebble.StructField("user", pebble.Column("id_str", "id_str"), pebble.Column("name", "name")),
	)
	p.Aggregate(sel3,
		[]pebble.GroupKey{pebble.Key("user")},
		[]pebble.AggSpec{pebble.Agg(pebble.AggCollectList, "tweet", "tweets")},
	)
	return p
}

// TestPublicAPIEndToEnd exercises the README quickstart: run the running
// example with capture and answer the Sec. 2 provenance question.
func TestPublicAPIEndToEnd(t *testing.T) {
	inputs := map[string]*pebble.Dataset{
		"tweets.json": pebble.NewDataset("tweets.json", tab1(), 2),
	}
	session := pebble.Session{Partitions: 2}
	cap, err := session.Capture(figure1(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	pattern := pebble.NewPattern(
		pebble.Desc("id_str").WithEq(pebble.String("lp")),
		pebble.Child("tweets",
			pebble.Child("text").WithEq(pebble.String("Hello World")).WithCount(2, 2),
		),
	)
	q, err := cap.Query(pattern)
	if err != nil {
		t.Fatal(err)
	}
	items := q.Items()
	if len(items) != 2 {
		t.Fatalf("traced %d items, want the two Hello World tweets", len(items))
	}
	report := q.Report()
	for _, want := range []string{"Hello World", "contributing", "influencing"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestPublicJSONHelpers(t *testing.T) {
	v, err := pebble.ParseJSON([]byte(`{"b": 1, "a": [true, null]}`))
	if err != nil {
		t.Fatal(err)
	}
	if v.AttrNames()[0] != "b" {
		t.Error("attribute order lost")
	}
	var buf bytes.Buffer
	if err := pebble.EncodeJSONLines(&buf, []pebble.Value{v}); err != nil {
		t.Fatal(err)
	}
	back, err := pebble.ParseJSONLines(buf.Bytes())
	if err != nil || len(back) != 1 || !pebble.Equal(v, back[0]) {
		t.Errorf("JSON round trip failed: %v %v", back, err)
	}
}

func TestPublicValueConstructors(t *testing.T) {
	if pebble.Int(1).Kind() != pebble.KindInt ||
		pebble.Double(1).Kind() != pebble.KindDouble ||
		pebble.String("").Kind() != pebble.KindString ||
		pebble.Bool(true).Kind() != pebble.KindBool ||
		pebble.Null().Kind() != pebble.KindNull ||
		pebble.Bag().Kind() != pebble.KindBag ||
		pebble.Set().Kind() != pebble.KindSet ||
		pebble.Item().Kind() != pebble.KindItem {
		t.Error("constructor kinds wrong")
	}
	if pebble.Set(pebble.Int(1), pebble.Int(1)).Len() != 1 {
		t.Error("set must deduplicate")
	}
}

func TestTreeFromValuePublic(t *testing.T) {
	v := pebble.Item(pebble.F("a", pebble.Bag(pebble.Int(1), pebble.Int(2))))
	tr := pebble.TreeFromValue(v)
	if tr.IsEmpty() {
		t.Error("full tree should not be empty")
	}
	b := pebble.NewStructure()
	b.Add(1, tr)
	if b.Len() != 1 {
		t.Error("structure add failed")
	}
}
