package pebble_test

import (
	"fmt"

	"pebble"
)

// ExampleSession_Capture runs the paper's running example (Fig. 1) with
// structural provenance capture and answers the Fig. 4 provenance question.
func ExampleSession_Capture() {
	inputs := map[string]*pebble.Dataset{
		"tweets.json": pebble.NewDataset("tweets.json", tab1(), 1),
	}
	session := pebble.Session{Partitions: 1}
	cap, err := session.Capture(figure1(), inputs)
	if err != nil {
		panic(err)
	}
	q, err := cap.Query(pebble.NewPattern(
		pebble.Desc("id_str").WithEq(pebble.String("lp")),
		pebble.Child("tweets",
			pebble.Child("text").WithEq(pebble.String("Hello World")).WithCount(2, 2),
		),
	))
	if err != nil {
		panic(err)
	}
	fmt.Printf("matched %d result item(s), traced %d input tweet(s)\n",
		q.Matched.Len(), len(q.Items()))
	for _, si := range q.Items() {
		text, _ := si.Row.Value.Get("text")
		fmt.Printf("  %s\n", text)
	}
	// Output:
	// matched 1 result item(s), traced 2 input tweet(s)
	//   "Hello World"
	//   "Hello World"
}

// ExampleParsePattern shows the textual tree-pattern syntax.
func ExampleParsePattern() {
	pattern, err := pebble.ParsePattern(`//id_str == "lp", tweets(text ~= "World" #[2,2])`)
	if err != nil {
		panic(err)
	}
	fmt.Println(pattern)
	// Output:
	// root
	//   //id_str == "lp"
	//   tweets
	//     text contains "World" [2,2]
}

// ExampleParseJSON decodes nested JSON preserving attribute order.
func ExampleParseJSON() {
	v, err := pebble.ParseJSON([]byte(`{"text": "hi", "tags": ["a", "b"], "n": 2}`))
	if err != nil {
		panic(err)
	}
	fmt.Println(v)
	tags, _ := v.Get("tags")
	fmt.Println(tags.Len())
	// Output:
	// {text: "hi", tags: ["a", "b"], n: 2}
	// 2
}

// ExampleOptimize shows a filter being pushed below a select.
func ExampleOptimize() {
	p := pebble.NewPipeline()
	src := p.Source("in")
	sel := p.Select(src, pebble.Column("uid", "user.id_str"))
	p.Filter(sel, pebble.Eq(pebble.Col("uid"), pebble.LitString("lp")))
	opt, rules, err := pebble.Optimize(p)
	if err != nil {
		panic(err)
	}
	fmt.Println(rules)
	_ = opt
	// Output:
	// [pushdown-filter-below-select]
}
