// Command pebbled is the Pebble provenance daemon: it serves the Session
// API over HTTP — named sessions, dataset registration, asynchronous
// pipeline and trace jobs with cancellation and streamed progress — so many
// clients share one capture/query process (ROADMAP item 1).
//
// Usage:
//
//	pebbled [-addr 127.0.0.1:7077] [-data ./pebbled-data]
//	        [-queue-depth 64] [-runners 2] [-session-cap 1]
//	pebbled -smoke T3
//
// The -smoke form is the CI gate (`make serve-smoke`): it boots the daemon
// on an ephemeral port, drives the named scenario end-to-end through the
// pkg/sdk client — capture, provenance download, trace — and exits non-zero
// unless the daemon's provenance bytes and trace report are identical to a
// direct library execution.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pebble"
	"pebble/internal/server"
	"pebble/internal/workload"
	"pebble/pkg/sdk"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7077", "listen address")
	dataDir := flag.String("data", "./pebbled-data", "artifact directory (.pbl/.idx job outputs)")
	queueDepth := flag.Int("queue-depth", 64, "max queued jobs before 429 backpressure")
	runners := flag.Int("runners", 2, "job runner goroutines")
	sessionCap := flag.Int("session-cap", 1, "max concurrently running jobs per session")
	smoke := flag.String("smoke", "", "run the end-to-end smoke check for the named scenario (T1–T5, D1–D5) and exit")
	flag.Parse()

	if *smoke != "" {
		if err := runSmoke(*smoke); err != nil {
			fmt.Fprintf(os.Stderr, "pebbled smoke %s: FAIL: %v\n", *smoke, err)
			os.Exit(1)
		}
		fmt.Printf("pebbled smoke %s: PASS\n", *smoke)
		return
	}

	cfg := server.Config{
		DataDir:    *dataDir,
		QueueDepth: *queueDepth,
		Runners:    *runners,
		SessionCap: *sessionCap,
	}
	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pebbled: %v\n", err)
		os.Exit(1)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pebbled: listen: %v\n", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(shutdownCtx) //nolint:errcheck // exiting anyway
	}()
	fmt.Printf("pebbled listening on http://%s (data: %s, queue %d, runners %d, session cap %d)\n",
		ln.Addr(), *dataDir, *queueDepth, *runners, *sessionCap)
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "pebbled: serve: %v\n", err)
		os.Exit(1)
	}
}

// runSmoke is the serve-smoke gate: one scenario through a live daemon via
// the SDK must reproduce the library execution byte for byte.
func runSmoke(scenario string) error {
	sc, err := workload.ByName(scenario)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "pebbled-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	srv, err := server.New(server.Config{DataDir: dir})
	if err != nil {
		return err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln) //nolint:errcheck // shut down below
	defer hs.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	c := sdk.New("http://" + ln.Addr().String())

	if _, err := c.CreateSession(ctx, sdk.SessionSpec{Name: "smoke"}); err != nil {
		return fmt.Errorf("create session: %w", err)
	}
	job, err := c.SubmitJob(ctx, "smoke", sdk.SubmitJobRequest{
		Kind: sdk.KindPipeline, Scenario: scenario, SimGB: 1,
	})
	if err != nil {
		return fmt.Errorf("submit pipeline: %w", err)
	}
	// Follow the event stream while the job runs: the smoke check also
	// exercises live progress delivery end to end.
	events := 0
	if err := c.StreamEvents(ctx, "smoke", job.ID, func(sdk.JobEvent) error {
		events++
		return nil
	}); err != nil {
		return fmt.Errorf("stream events: %w", err)
	}
	info, err := c.WaitJob(ctx, "smoke", job.ID)
	if err != nil {
		return fmt.Errorf("wait pipeline: %w", err)
	}
	if info.Status != sdk.StatusDone {
		return fmt.Errorf("pipeline job %s: %s (%s)", job.ID, info.Status, info.Error)
	}
	remote, err := c.Provenance(ctx, "smoke", job.ID)
	if err != nil {
		return fmt.Errorf("download provenance: %w", err)
	}

	// The library execution the daemon must match byte for byte.
	sess := pebble.NewSession()
	cap, err := sess.CaptureContext(ctx, sc.Build(), sc.Input(workload.DefaultScale(1), sess.ResolvePartitions(0)))
	if err != nil {
		return fmt.Errorf("library capture: %w", err)
	}
	var local bytes.Buffer
	if _, err := cap.Provenance.WriteTo(&local); err != nil {
		return err
	}
	if !bytes.Equal(remote, local.Bytes()) {
		return fmt.Errorf("provenance bytes differ: daemon %d bytes, library %d bytes", len(remote), local.Len())
	}

	// Trace through the daemon (pattern over the wire as JSON) vs library.
	patJSON, err := json.Marshal(sc.Pattern)
	if err != nil {
		return err
	}
	tjob, err := c.SubmitJob(ctx, "smoke", sdk.SubmitJobRequest{
		Kind: sdk.KindTrace, TargetJob: job.ID, Pattern: patJSON,
	})
	if err != nil {
		return fmt.Errorf("submit trace: %w", err)
	}
	tinfo, err := c.WaitJob(ctx, "smoke", tjob.ID)
	if err != nil {
		return fmt.Errorf("wait trace: %w", err)
	}
	if tinfo.Status != sdk.StatusDone {
		return fmt.Errorf("trace job %s: %s (%s)", tjob.ID, tinfo.Status, tinfo.Error)
	}
	out, err := c.TraceResult(ctx, "smoke", tjob.ID)
	if err != nil {
		return fmt.Errorf("trace result: %w", err)
	}
	q, err := cap.Query(sc.Pattern)
	if err != nil {
		return fmt.Errorf("library query: %w", err)
	}
	if out.Report != q.Report() {
		return fmt.Errorf("trace reports differ:\n-- daemon --\n%s\n-- library --\n%s", out.Report, q.Report())
	}
	fmt.Printf("scenario %s: %d events streamed, %d provenance bytes, %d matched item(s) — daemon == library\n",
		scenario, events, len(remote), out.Matched)
	return nil
}
