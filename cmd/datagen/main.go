// Command datagen generates the synthetic nested Twitter or DBLP datasets of
// the evaluation workload as newline-delimited JSON.
//
// Usage:
//
//	datagen -dataset twitter|dblp [-gb 1] [-tweets-per-gb 200] \
//	        [-records-per-gb 2000] [-seed 42] [-o file.jsonl]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"pebble/internal/nested"
	"pebble/internal/workload"
)

func main() {
	dataset := flag.String("dataset", "twitter", "dataset: twitter or dblp")
	gb := flag.Int("gb", 1, "simulated size in GB")
	tweetsPerGB := flag.Int("tweets-per-gb", 200, "tweets per simulated GB")
	recordsPerGB := flag.Int("records-per-gb", 2000, "DBLP records per simulated GB")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	scale := workload.Scale{SimGB: *gb, TweetsPerGB: *tweetsPerGB, RecordsPerGB: *recordsPerGB, Seed: *seed}
	var values []nested.Value
	switch *dataset {
	case "twitter":
		values = workload.GenerateTwitter(scale)
	case "dblp":
		values = workload.GenerateDBLP(scale)
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q (want twitter or dblp)\n", *dataset)
		os.Exit(2)
	}

	w := os.Stdout
	var f *os.File
	if *out != "" {
		var err error
		if f, err = os.Create(*out); err != nil {
			log.Fatal(err)
		}
		w = f
	}
	bw := bufio.NewWriter(w)
	if err := nested.EncodeJSONLines(bw, values); err != nil {
		log.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		log.Fatal(err)
	}
	// Close errors surface deferred write failures (full disk, quota); a
	// silently truncated dataset must fail the generation run.
	if f != nil {
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "wrote %d %s items\n", len(values), *dataset)
}
