// Command pebble-shell starts an interactive provenance explorer over one of
// the evaluation scenarios: it runs the scenario with structural provenance
// capture and then answers tree-pattern questions, plan/result/provenance
// inspection, and forward impact queries at a prompt.
//
// Usage:
//
//	pebble-shell [-scenario T3] [-gb 1] [-partitions 4] [-optimize]
//
// Example session:
//
//	> //id_str == "hotuser", tweets(text ~= "good")
//	> impact 1 42
//	> provenance
//	> quit
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pebble/internal/core"
	"pebble/internal/engine"
	"pebble/internal/obs"
	"pebble/internal/shell"
	"pebble/internal/workload"
)

func main() {
	scenario := flag.String("scenario", "T3", "scenario name: T1-T5 or D1-D5")
	gb := flag.Int("gb", 1, "simulated input size in GB")
	tweetsPerGB := flag.Int("tweets-per-gb", 200, "tweets per simulated GB")
	recordsPerGB := flag.Int("records-per-gb", 2000, "DBLP records per simulated GB")
	partitions := flag.Int("partitions", 4, "engine partitions")
	optimize := flag.Bool("optimize", false, "optimize the plan before running")
	flag.Parse()

	sc, err := workload.ByName(*scenario)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	scale := workload.Scale{SimGB: *gb, TweetsPerGB: *tweetsPerGB, RecordsPerGB: *recordsPerGB, Seed: 42}
	pipe := sc.Build()
	if *optimize {
		opt, rules, err := engine.Optimize(pipe)
		if err != nil {
			log.Fatal(err)
		}
		pipe = opt
		if len(rules) > 0 {
			fmt.Printf("applied optimizations: %v\n", rules)
		}
	}
	session := core.NewSession(core.WithPartitions(*partitions), core.WithRecorder(obs.NewRecorder()))
	fmt.Printf("running %s with capture over %d simulated GB...\n", sc.Name, *gb)
	cap, err := session.Capture(pipe, sc.Input(scale, *partitions))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d result rows; provenance for %d operators captured\n",
		cap.Result.Output.Len(), len(cap.Provenance.Operators()))
	if err := shell.New(cap, os.Stdout).Run(os.Stdin); err != nil {
		log.Fatal(err)
	}
}
