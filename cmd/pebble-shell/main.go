// Command pebble-shell starts an interactive provenance explorer over one of
// the evaluation scenarios: it runs the scenario with structural provenance
// capture and then answers tree-pattern questions, plan/result/provenance
// inspection, and forward impact queries at a prompt.
//
// Usage:
//
//	pebble-shell [-scenario T3] [-gb 1] [-partitions 4] [-optimize]
//	pebble-shell -remote http://127.0.0.1:7077 [-session shell] [-job j1]
//
// With -remote the shell attaches to a running pebbled daemon instead of
// executing locally: questions become asynchronous trace jobs against a
// completed pipeline job's persisted provenance. If -job is empty the shell
// submits the scenario as a remote pipeline job first (creating the session
// when needed) and then explores its capture.
//
// Example session:
//
//	> //id_str == "hotuser", tweets(text ~= "good")
//	> impact 1 42
//	> provenance
//	> quit
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"pebble/internal/core"
	"pebble/internal/engine"
	"pebble/internal/obs"
	"pebble/internal/shell"
	"pebble/internal/workload"
	"pebble/pkg/sdk"
)

func main() {
	scenario := flag.String("scenario", "T3", "scenario name: T1-T5 or D1-D5")
	gb := flag.Int("gb", 1, "simulated input size in GB")
	tweetsPerGB := flag.Int("tweets-per-gb", 200, "tweets per simulated GB")
	recordsPerGB := flag.Int("records-per-gb", 2000, "DBLP records per simulated GB")
	partitions := flag.Int("partitions", 4, "engine partitions")
	optimize := flag.Bool("optimize", false, "optimize the plan before running")
	remote := flag.String("remote", "", "pebbled base URL; attach to a daemon instead of running locally")
	sessionName := flag.String("session", "shell", "daemon session name (remote mode)")
	jobID := flag.String("job", "", "completed pipeline job to explore (remote mode; empty = submit -scenario)")
	flag.Parse()

	if *remote != "" {
		if err := runRemote(*remote, *sessionName, *jobID, *scenario, *gb); err != nil {
			log.Fatal(err)
		}
		return
	}

	sc, err := workload.ByName(*scenario)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	scale := workload.Scale{SimGB: *gb, TweetsPerGB: *tweetsPerGB, RecordsPerGB: *recordsPerGB, Seed: 42}
	pipe := sc.Build()
	if *optimize {
		opt, rules, err := engine.Optimize(pipe)
		if err != nil {
			log.Fatal(err)
		}
		pipe = opt
		if len(rules) > 0 {
			fmt.Printf("applied optimizations: %v\n", rules)
		}
	}
	session := core.NewSession(core.WithPartitions(*partitions), core.WithRecorder(obs.NewRecorder()))
	fmt.Printf("running %s with capture over %d simulated GB...\n", sc.Name, *gb)
	cap, err := session.Capture(pipe, sc.Input(scale, *partitions))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d result rows; provenance for %d operators captured\n",
		cap.Result.Output.Len(), len(cap.Provenance.Operators()))
	if err := shell.New(cap, os.Stdout).Run(os.Stdin); err != nil {
		log.Fatal(err)
	}
}

// runRemote attaches the shell to a pebbled daemon: ensure the session
// exists, ensure there is a completed pipeline job to trace against
// (submitting the scenario when none was named), then hand off to the
// remote REPL.
func runRemote(base, session, jobID, scenario string, gb int) error {
	c := sdk.New(base)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	if _, err := c.GetSession(ctx, session); err != nil {
		if _, err := c.CreateSession(ctx, sdk.SessionSpec{Name: session}); err != nil {
			return fmt.Errorf("create session %q: %w", session, err)
		}
	}
	if jobID == "" {
		fmt.Printf("submitting %s (%d simulated GB) to %s as session %q...\n", scenario, gb, base, session)
		j, err := c.SubmitJob(ctx, session, sdk.SubmitJobRequest{
			Kind: sdk.KindPipeline, Scenario: scenario, SimGB: gb,
		})
		if err != nil {
			return fmt.Errorf("submit pipeline: %w", err)
		}
		info, err := c.WaitJob(ctx, session, j.ID)
		if err != nil {
			return fmt.Errorf("wait pipeline: %w", err)
		}
		if info.Status != sdk.StatusDone {
			return fmt.Errorf("pipeline job %s: %s (%s)", j.ID, info.Status, info.Error)
		}
		fmt.Printf("job %s done: %d result rows, %d provenance bytes\n", j.ID, info.ResultRows, info.ProvBytes)
		jobID = j.ID
	}
	return shell.NewRemote(c, session, jobID, os.Stdout).Run(os.Stdin)
}
