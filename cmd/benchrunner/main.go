// Command benchrunner regenerates the tables and figures of the paper's
// evaluation (Sec. 7.3). Each experiment prints the same rows/series the
// paper reports; EXPERIMENTS.md records a reference run next to the paper's
// numbers.
//
// Usage:
//
//	benchrunner -exp fig6|fig7|fig8a|fig8b|fig9a|fig9b|titian|perop|fig10|scaling|all \
//	            [-gb 100,200,300,400,500] [-tweets-per-gb 40] [-records-per-gb 400] \
//	            [-partitions 16] [-workers 1,2,4] [-reps 3] [-out scaling.json]
//
// The -gb values are simulated gigabytes; item densities per GB are
// configurable (see DESIGN.md for the calibration). -exp scaling sweeps the
// physical worker count at fixed logical partitioning and, with -out, writes
// the rows as JSON (see BENCH_PR1.json for the reference baseline).
//
// -exp breakdown attributes capture overhead and provenance bytes to
// individual operators via the obs recorder and, with -out, writes the
// report as JSON (see BENCH_PR4.json). -exp overheadgate measures what an
// attached recorder costs a capture run and exits non-zero when it exceeds
// -gate-pct percent (default 2) — `make bench-overhead` wraps it.
//
// -exp codec serialises every scenario's captured run through both codec
// versions (fixed-width v1 vs columnar delta+varint v2) and reports stream
// sizes and encode/decode times; with -out it writes the comparison as JSON
// (see BENCH_PR5.json) — `make bench-codec` wraps it.
//
// -exp query measures the query-side reload paths for every scenario: the
// persisted run answered cold (eager decode + per-operator index rebuild)
// vs warm (lazy column decode + persisted index sidecar), interpreted vs
// compiled tree-pattern matching, the lazy-decode byte accounting of a
// single-operator trace, and the load-path identity cross-check; with -out
// it writes the sweep as JSON (see BENCH_PR6.json) — `make bench-query`
// wraps it.
//
// -exp vectors compares the vectorized (columnar batch) executor against
// the legacy row-at-a-time path for every scenario, plain and under eager
// capture, including the byte-identity cross-check; with -out it writes the
// sweep as JSON (see BENCH_PR7.json) — `make bench-vectors` wraps it.
//
// -exp joinagg compares the vectorized join-probe and aggregate kernels
// against the scalar reference path on join/aggregate-dominated pipelines
// (broadcast and shuffle join shapes, numeric and collect aggregates), plain
// and under eager capture, including the byte-identity cross-check; with
// -out it writes the sweep as JSON (see BENCH_PR10.json) —
// `make bench-joinagg` wraps it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"

	"pebble/internal/engine"
	"pebble/internal/experiments"
	"pebble/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig6, fig7, fig8a, fig8b, fig9a, fig9b, titian, perop, breakdown, overheadgate, fig10, annotations, scaling, codec, query, vectors, joinagg, all")
	gbList := flag.String("gb", "", "comma-separated simulated-GB sizes (defaults per experiment)")
	tweetsPerGB := flag.Int("tweets-per-gb", 40, "tweets per simulated GB")
	recordsPerGB := flag.Int("records-per-gb", 400, "DBLP records per simulated GB")
	partitions := flag.Int("partitions", engine.DefaultPartitions, "logical engine partitions")
	workersList := flag.String("workers", "", "comma-separated worker counts for -exp scaling (default 1,2,4,NumCPU)")
	reps := flag.Int("reps", 3, "measured repetitions per data point")
	out := flag.String("out", "", "write -exp scaling/breakdown results as JSON to this file")
	gatePct := flag.Float64("gate-pct", 2.0, "-exp overheadgate fails when the recorder overhead exceeds this percentage")
	flag.Parse()

	cfg := experiments.Config{Partitions: *partitions, Reps: *reps, Warmup: true}
	run := func(name string) {
		if err := runExperiment(name, cfg, *gbList, *tweetsPerGB, *recordsPerGB, *workersList, *out, *gatePct); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}
	switch *exp {
	case "all":
		for _, name := range []string{"fig6", "fig7", "fig8a", "fig8b", "fig9a", "fig9b", "titian", "perop", "fig10", "annotations", "scaling"} {
			run(name)
			if err := emit("\n"); err != nil {
				log.Fatalf("writing report: %v", err)
			}
		}
	default:
		run(*exp)
	}
	if err := stdout.Flush(); err != nil {
		log.Fatalf("writing report: %v", err)
	}
}

// stdout buffers the rendered reports; write failures (closed pipe, full
// disk) must fail the run instead of silently truncating the tables the
// evaluation baselines are diffed against.
var stdout = bufio.NewWriter(os.Stdout)

func emit(s string) error {
	_, err := io.WriteString(stdout, s)
	return err
}

// scalingBaseline is the JSON document -out writes: the environment the sweep
// ran in plus the measured rows, so baselines recorded in the repo are
// interpretable on other machines.
type scalingBaseline struct {
	NumCPU     int                      `json:"num_cpu"`
	GOMAXPROCS int                      `json:"gomaxprocs"`
	Partitions int                      `json:"partitions"`
	SimGB      int                      `json:"sim_gb"`
	Reps       int                      `json:"reps"`
	Rows       []experiments.ScalingRow `json:"rows"`
}

func writeScalingJSON(path string, cfg experiments.Config, rows []experiments.ScalingRow) error {
	doc := scalingBaseline{
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Partitions: cfg.Partitions,
		Reps:       cfg.Reps,
		Rows:       rows,
	}
	if cfg.Partitions < 1 {
		doc.Partitions = engine.DefaultPartitions
	}
	if len(rows) > 0 {
		doc.SimGB = rows[0].SimGB
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// breakdownBaseline is the JSON document -exp breakdown -out writes: the
// per-operator capture-overhead and provenance-bytes breakdowns plus the
// recorder (observability) overhead measurements, with enough environment
// context to interpret committed baselines on other machines.
type breakdownBaseline struct {
	NumCPU           int                               `json:"num_cpu"`
	GOMAXPROCS       int                               `json:"gomaxprocs"`
	Partitions       int                               `json:"partitions"`
	Reps             int                               `json:"reps"`
	Scenarios        []*experiments.BreakdownReport    `json:"scenarios"`
	RecorderOverhead []experiments.RecorderOverheadRow `json:"recorder_overhead"`
}

func writeBreakdownJSON(path string, cfg experiments.Config, reports []*experiments.BreakdownReport, gates []experiments.RecorderOverheadRow) error {
	doc := breakdownBaseline{
		NumCPU:           runtime.NumCPU(),
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		Partitions:       cfg.Partitions,
		Reps:             cfg.Reps,
		Scenarios:        reports,
		RecorderOverhead: gates,
	}
	if cfg.Partitions < 1 {
		doc.Partitions = engine.DefaultPartitions
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// codecBaseline is the JSON document -exp codec -out writes: per-scenario
// stream sizes and encode/decode times for both codec versions, with the
// usual environment context for interpreting committed baselines.
type codecBaseline struct {
	NumCPU     int                    `json:"num_cpu"`
	GOMAXPROCS int                    `json:"gomaxprocs"`
	Partitions int                    `json:"partitions"`
	Reps       int                    `json:"reps"`
	Rows       []experiments.CodecRow `json:"rows"`
}

func writeCodecJSON(path string, cfg experiments.Config, rows []experiments.CodecRow) error {
	doc := codecBaseline{
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Partitions: cfg.Partitions,
		Reps:       cfg.Reps,
		Rows:       rows,
	}
	if cfg.Partitions < 1 {
		doc.Partitions = engine.DefaultPartitions
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// queryBaseline is the JSON document -exp query -out writes: per-scenario
// cold vs warm reload-and-trace times, sidecar sizes, lazy-decode byte
// accounting, and the interpreted vs compiled match times, with the usual
// environment context for interpreting committed baselines.
type queryBaseline struct {
	NumCPU     int                         `json:"num_cpu"`
	GOMAXPROCS int                         `json:"gomaxprocs"`
	Partitions int                         `json:"partitions"`
	Reps       int                         `json:"reps"`
	Rows       []experiments.QuerySweepRow `json:"rows"`
}

func writeQueryJSON(path string, cfg experiments.Config, rows []experiments.QuerySweepRow) error {
	doc := queryBaseline{
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Partitions: cfg.Partitions,
		Reps:       cfg.Reps,
		Rows:       rows,
	}
	if cfg.Partitions < 1 {
		doc.Partitions = engine.DefaultPartitions
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// vectorsBaseline is the JSON document -exp vectors -out writes: per-scenario
// row vs vectorized execution times (plain and under capture) plus the
// byte-identity cross-check, with the usual environment context for
// interpreting committed baselines.
type vectorsBaseline struct {
	NumCPU     int                     `json:"num_cpu"`
	GOMAXPROCS int                     `json:"gomaxprocs"`
	Partitions int                     `json:"partitions"`
	Reps       int                     `json:"reps"`
	Rows       []experiments.VectorRow `json:"rows"`
}

func writeVectorsJSON(path string, cfg experiments.Config, rows []experiments.VectorRow) error {
	doc := vectorsBaseline{
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Partitions: cfg.Partitions,
		Reps:       cfg.Reps,
		Rows:       rows,
	}
	if cfg.Partitions < 1 {
		doc.Partitions = engine.DefaultPartitions
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// joinAggBaseline is the JSON document -exp joinagg -out writes: per-scenario
// vectorized-kernel vs scalar-reference execution times (plain and under
// capture) plus the byte-identity cross-check, with the usual environment
// context for interpreting committed baselines.
type joinAggBaseline struct {
	NumCPU     int                      `json:"num_cpu"`
	GOMAXPROCS int                      `json:"gomaxprocs"`
	Partitions int                      `json:"partitions"`
	Reps       int                      `json:"reps"`
	Rows       []experiments.JoinAggRow `json:"rows"`
}

func writeJoinAggJSON(path string, cfg experiments.Config, rows []experiments.JoinAggRow) error {
	doc := joinAggBaseline{
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Partitions: cfg.Partitions,
		Reps:       cfg.Reps,
		Rows:       rows,
	}
	if cfg.Partitions < 1 {
		doc.Partitions = engine.DefaultPartitions
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func parseGBs(s string, def []int) []int {
	if s == "" {
		return def
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "bad -gb value %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func parseWorkers(s string) []int {
	if s == "" {
		return nil // Scaling picks 1,2,4,NumCPU
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "bad -workers value %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func runExperiment(name string, cfg experiments.Config, gbList string, tweetsPerGB, recordsPerGB int, workersList, out string, gatePct float64) error {
	sweepFull := experiments.Sweep{
		SimGBs:       parseGBs(gbList, []int{100, 200, 300, 400, 500}),
		TweetsPerGB:  tweetsPerGB,
		RecordsPerGB: recordsPerGB,
	}
	sweep100 := sweepFull
	sweep100.SimGBs = parseGBs(gbList, []int{100})
	sweepSmall := sweepFull
	sweepSmall.SimGBs = parseGBs(gbList, []int{10})

	switch name {
	case "fig6":
		rows, err := experiments.Fig6(cfg, sweepFull)
		if err != nil {
			return err
		}
		return emit(experiments.RenderOverhead("Fig 6 — capture runtime overhead, Twitter T1-T5", rows))
	case "fig7":
		rows, err := experiments.Fig7(cfg, sweepFull)
		if err != nil {
			return err
		}
		return emit(experiments.RenderOverhead("Fig 7 — capture runtime overhead, DBLP D1-D5", rows))
	case "fig8a":
		rows, err := experiments.Fig8a(cfg, sweep100)
		if err != nil {
			return err
		}
		return emit(experiments.RenderSizes("Fig 8(a) — provenance size, Twitter T1-T5 (100 GB)", rows))
	case "fig8b":
		rows, err := experiments.Fig8b(cfg, sweep100)
		if err != nil {
			return err
		}
		return emit(experiments.RenderSizes("Fig 8(b) — provenance size, DBLP D1-D5 (100 GB)", rows))
	case "fig9a":
		rows, err := experiments.Fig9a(cfg, sweep100)
		if err != nil {
			return err
		}
		return emit(experiments.RenderQueries("Fig 9(a) — backtracing runtime eager vs lazy, Twitter", rows))
	case "fig9b":
		rows, err := experiments.Fig9b(cfg, sweep100)
		if err != nil {
			return err
		}
		return emit(experiments.RenderQueries("Fig 9(b) — backtracing runtime eager vs lazy, DBLP", rows))
	case "titian":
		rows, err := experiments.TitianComparison(
			experiments.ScaleFor(sweep100.SimGBs[0], tweetsPerGB, recordsPerGB), cfg)
		if err != nil {
			return err
		}
		return emit(experiments.RenderTitian(rows))
	case "perop":
		rows, err := experiments.PerOperatorOverhead(
			experiments.ScaleFor(sweep100.SimGBs[0], tweetsPerGB, recordsPerGB), cfg)
		if err != nil {
			return err
		}
		return emit(experiments.RenderPerOperator(rows))
	case "breakdown":
		scale := experiments.ScaleFor(sweep100.SimGBs[0], tweetsPerGB, recordsPerGB)
		var reports []*experiments.BreakdownReport
		var gates []experiments.RecorderOverheadRow
		for _, sc := range workload.TwitterScenarios() {
			rep, err := experiments.CaptureBreakdown(sc, scale, cfg)
			if err != nil {
				return err
			}
			reports = append(reports, rep)
			if err := emit(experiments.RenderBreakdown(
				fmt.Sprintf("Per-operator capture breakdown — %s (%d GB)", sc.Name, scale.SimGB), rep)); err != nil {
				return err
			}
			gate, err := experiments.RecorderOverhead(sc, scale, cfg)
			if err != nil {
				return err
			}
			gates = append(gates, gate)
			if err := emit(fmt.Sprintf("recorder overhead %s: nil %s vs attached %s (%.1f%%)\n\n",
				sc.Name, gate.NilRecorder, gate.Attached, gate.OverheadPct)); err != nil {
				return err
			}
		}
		if out != "" {
			if err := writeBreakdownJSON(out, cfg, reports, gates); err != nil {
				return err
			}
			return emit(fmt.Sprintf("wrote %s\n", out))
		}
	case "overheadgate":
		// Noise tolerance: the gate passes as soon as one attempt lands
		// within budget — a single quiet run proves the code path is cheap,
		// while scheduler spikes can only produce false alarms, not false
		// passes.
		sc, err := workload.ByName("T3")
		if err != nil {
			return err
		}
		scale := experiments.ScaleFor(sweep100.SimGBs[0], tweetsPerGB, recordsPerGB)
		const attempts = 3
		var best experiments.RecorderOverheadRow
		for i := 0; i < attempts; i++ {
			row, err := experiments.RecorderOverhead(sc, scale, cfg)
			if err != nil {
				return err
			}
			if i == 0 || row.OverheadPct < best.OverheadPct {
				best = row
			}
			if best.OverheadPct <= gatePct {
				break
			}
		}
		if err := emit(fmt.Sprintf("overhead gate (%s, %d GB): nil %s vs attached %s — %.2f%% (budget %.2f%%)\n",
			sc.Name, scale.SimGB, best.NilRecorder, best.Attached, best.OverheadPct, gatePct)); err != nil {
			return err
		}
		if best.OverheadPct > gatePct {
			if err := stdout.Flush(); err != nil {
				return err
			}
			return fmt.Errorf("recorder overhead %.2f%% exceeds the %.2f%% budget", best.OverheadPct, gatePct)
		}
	case "fig10":
		out, err := experiments.Fig10(cfg, sweepSmall)
		if err != nil {
			return err
		}
		return emit(out)
	case "annotations":
		// The Sec. 2 argument on the running-example data and on one
		// simulated GB of wide tweets.
		if err := emit(experiments.RenderAnnotations(
			"Sec 2 — annotations on the Tab. 1 tweets (paper: 35 vs 5)",
			experiments.AnnotationComparison(workload.ExampleTweets()))); err != nil {
			return err
		}
		scale := experiments.ScaleFor(1, tweetsPerGB, recordsPerGB)
		return emit(experiments.RenderAnnotations(
			"Sec 2 — annotations on 1 simulated GB of wide tweets",
			experiments.AnnotationComparison(workload.GenerateTwitter(scale))))
	case "scaling":
		rows, err := experiments.Scaling(cfg, sweepSmall, parseWorkers(workersList))
		if err != nil {
			return err
		}
		if err := emit(experiments.RenderScaling(
			"Scaling — capture wall time vs physical workers, Twitter T1-T5", rows)); err != nil {
			return err
		}
		if out != "" {
			if err := writeScalingJSON(out, cfg, rows); err != nil {
				return err
			}
			return emit(fmt.Sprintf("wrote %s\n", out))
		}
	case "codec":
		rows, err := experiments.CodecComparison(cfg, sweepSmall)
		if err != nil {
			return err
		}
		if err := emit(experiments.RenderCodec(
			"Codec — v1 fixed-width vs v2 columnar delta+varint, all scenarios", rows)); err != nil {
			return err
		}
		if out != "" {
			if err := writeCodecJSON(out, cfg, rows); err != nil {
				return err
			}
			return emit(fmt.Sprintf("wrote %s\n", out))
		}
	case "query":
		rows, err := experiments.QuerySweep(cfg, sweepSmall)
		if err != nil {
			return err
		}
		if err := emit(experiments.RenderQuerySweep(
			"Query — cold (eager+rebuild) vs warm (lazy+sidecar) reload-and-trace, all scenarios", rows)); err != nil {
			return err
		}
		if out != "" {
			if err := writeQueryJSON(out, cfg, rows); err != nil {
				return err
			}
			return emit(fmt.Sprintf("wrote %s\n", out))
		}
	case "vectors":
		rows, err := experiments.VectorSweep(cfg, sweepSmall)
		if err != nil {
			return err
		}
		if err := emit(experiments.RenderVectors(
			"Vectors — columnar batch executor vs row-at-a-time, all scenarios", rows)); err != nil {
			return err
		}
		if out != "" {
			if err := writeVectorsJSON(out, cfg, rows); err != nil {
				return err
			}
			return emit(fmt.Sprintf("wrote %s\n", out))
		}
	case "joinagg":
		rows, err := experiments.JoinAggSweep(cfg, sweepSmall)
		if err != nil {
			return err
		}
		if err := emit(experiments.RenderJoinAgg(
			"JoinAgg — vectorized join-probe and aggregate kernels vs scalar reference", rows)); err != nil {
			return err
		}
		if out != "" {
			if err := writeJoinAggJSON(out, cfg, rows); err != nil {
				return err
			}
			return emit(fmt.Sprintf("wrote %s\n", out))
		}
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}
