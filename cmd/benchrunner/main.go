// Command benchrunner regenerates the tables and figures of the paper's
// evaluation (Sec. 7.3). Each experiment prints the same rows/series the
// paper reports; EXPERIMENTS.md records a reference run next to the paper's
// numbers.
//
// Usage:
//
//	benchrunner -exp fig6|fig7|fig8a|fig8b|fig9a|fig9b|titian|perop|fig10|all \
//	            [-gb 100,200,300,400,500] [-tweets-per-gb 40] [-records-per-gb 400] \
//	            [-partitions 4] [-reps 3]
//
// The -gb values are simulated gigabytes; item densities per GB are
// configurable (see DESIGN.md for the calibration).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"pebble/internal/experiments"
	"pebble/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig6, fig7, fig8a, fig8b, fig9a, fig9b, titian, perop, fig10, annotations, all")
	gbList := flag.String("gb", "", "comma-separated simulated-GB sizes (defaults per experiment)")
	tweetsPerGB := flag.Int("tweets-per-gb", 40, "tweets per simulated GB")
	recordsPerGB := flag.Int("records-per-gb", 400, "DBLP records per simulated GB")
	partitions := flag.Int("partitions", 4, "engine partitions")
	reps := flag.Int("reps", 3, "measured repetitions per data point")
	flag.Parse()

	cfg := experiments.Config{Partitions: *partitions, Reps: *reps, Warmup: true}
	run := func(name string) {
		if err := runExperiment(name, cfg, *gbList, *tweetsPerGB, *recordsPerGB); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}
	switch *exp {
	case "all":
		for _, name := range []string{"fig6", "fig7", "fig8a", "fig8b", "fig9a", "fig9b", "titian", "perop", "fig10", "annotations"} {
			run(name)
			fmt.Println()
		}
	default:
		run(*exp)
	}
}

func parseGBs(s string, def []int) []int {
	if s == "" {
		return def
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "bad -gb value %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func runExperiment(name string, cfg experiments.Config, gbList string, tweetsPerGB, recordsPerGB int) error {
	sweepFull := experiments.Sweep{
		SimGBs:       parseGBs(gbList, []int{100, 200, 300, 400, 500}),
		TweetsPerGB:  tweetsPerGB,
		RecordsPerGB: recordsPerGB,
	}
	sweep100 := sweepFull
	sweep100.SimGBs = parseGBs(gbList, []int{100})
	sweepSmall := sweepFull
	sweepSmall.SimGBs = parseGBs(gbList, []int{10})

	switch name {
	case "fig6":
		rows, err := experiments.Fig6(cfg, sweepFull)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderOverhead("Fig 6 — capture runtime overhead, Twitter T1-T5", rows))
	case "fig7":
		rows, err := experiments.Fig7(cfg, sweepFull)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderOverhead("Fig 7 — capture runtime overhead, DBLP D1-D5", rows))
	case "fig8a":
		rows, err := experiments.Fig8a(cfg, sweep100)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderSizes("Fig 8(a) — provenance size, Twitter T1-T5 (100 GB)", rows))
	case "fig8b":
		rows, err := experiments.Fig8b(cfg, sweep100)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderSizes("Fig 8(b) — provenance size, DBLP D1-D5 (100 GB)", rows))
	case "fig9a":
		rows, err := experiments.Fig9a(cfg, sweep100)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderQueries("Fig 9(a) — backtracing runtime eager vs lazy, Twitter", rows))
	case "fig9b":
		rows, err := experiments.Fig9b(cfg, sweep100)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderQueries("Fig 9(b) — backtracing runtime eager vs lazy, DBLP", rows))
	case "titian":
		rows, err := experiments.TitianComparison(
			experiments.ScaleFor(sweep100.SimGBs[0], tweetsPerGB, recordsPerGB), cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderTitian(rows))
	case "perop":
		rows, err := experiments.PerOperatorOverhead(
			experiments.ScaleFor(sweep100.SimGBs[0], tweetsPerGB, recordsPerGB), cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderPerOperator(rows))
	case "fig10":
		out, err := experiments.Fig10(cfg, sweepSmall)
		if err != nil {
			return err
		}
		fmt.Print(out)
	case "annotations":
		// The Sec. 2 argument on the running-example data and on one
		// simulated GB of wide tweets.
		fmt.Print(experiments.RenderAnnotations(
			"Sec 2 — annotations on the Tab. 1 tweets (paper: 35 vs 5)",
			experiments.AnnotationComparison(workload.ExampleTweets())))
		scale := experiments.ScaleFor(1, tweetsPerGB, recordsPerGB)
		fmt.Print(experiments.RenderAnnotations(
			"Sec 2 — annotations on 1 simulated GB of wide tweets",
			experiments.AnnotationComparison(workload.GenerateTwitter(scale))))
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}
