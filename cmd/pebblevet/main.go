// Command pebblevet is the repo's static-analysis gate, invoked through the
// go toolchain:
//
//	go build -o bin/pebblevet ./cmd/pebblevet
//	go vet -vettool=bin/pebblevet ./...
//
// It enforces the invariants previous PRs established dynamically —
// byte-identical results and provenance across worker counts, sound
// accessed-path reporting (Def. 5.1), collector/scheduler lock discipline,
// and checked codec errors — as compile-time checks. See DESIGN.md for the
// suite's scope and the //pebblevet:ignore escape hatch.
package main

import (
	"pebble/internal/analysis/suite"
	"pebble/internal/analysis/unitchecker"
)

func main() {
	unitchecker.Main(suite.Analyzers()...)
}
