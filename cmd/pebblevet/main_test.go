package main_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestVetToolExitStatus builds the vettool, seeds a scratch module, and
// exercises the full `go vet -vettool` protocol end to end: a violation makes
// vet exit non-zero, a justified ignore silences it, and an ignore that no
// longer covers anything is itself reported by staleignore.
func TestVetToolExitStatus(t *testing.T) {
	tmp := t.TempDir()
	tool := filepath.Join(tmp, "pebblevet")
	if runtime.GOOS == "windows" {
		tool += ".exe"
	}
	if out, err := command(t, "", "go", "build", "-o", tool, ".").CombinedOutput(); err != nil {
		t.Fatalf("building vettool: %v\n%s", err, out)
	}

	mod := filepath.Join(tmp, "seedtest")
	if err := os.MkdirAll(mod, 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(mod, "go.mod"), "module seedtest\n\ngo 1.22\n")

	vet := func() (string, error) {
		out, err := command(t, mod, "go", "vet", "-vettool="+tool, "./...").CombinedOutput()
		return string(out), err
	}

	// A seeded determinism violation: map iteration order folded into a string.
	writeFile(t, filepath.Join(mod, "main.go"), `package main

import "fmt"

func main() {
	m := map[string]int{"a": 1, "b": 2}
	s := ""
	for k := range m {
		s += k
	}
	fmt.Println(s)
}
`)
	out, err := vet()
	if err == nil {
		t.Fatalf("go vet -vettool exited 0 on a seeded violation; output:\n%s", out)
	}
	if !strings.Contains(out, "map iteration order is nondeterministic") {
		t.Fatalf("expected determinism diagnostic in vet output, got:\n%s", out)
	}

	// The same violation with a justified trailing ignore passes clean — and
	// the directive is live, so staleignore stays quiet too.
	writeFile(t, filepath.Join(mod, "main.go"), `package main

import "fmt"

func main() {
	m := map[string]int{"a": 1, "b": 2}
	s := ""
	for k := range m { //pebblevet:ignore determinism -- seed: order accepted
		s += k
	}
	fmt.Println(s)
}
`)
	if out, err := vet(); err != nil {
		t.Fatalf("go vet -vettool failed on a suppressed violation: %v\n%s", err, out)
	}

	// Remove the violation but keep the directive: now the directive itself
	// is the finding.
	writeFile(t, filepath.Join(mod, "main.go"), `package main

import "fmt"

func main() {
	s := "ab" //pebblevet:ignore determinism -- seed: order accepted
	fmt.Println(s)
}
`)
	out, err = vet()
	if err == nil {
		t.Fatalf("go vet -vettool exited 0 on a stale ignore; output:\n%s", out)
	}
	if !strings.Contains(out, "stale //pebblevet:ignore determinism") {
		t.Fatalf("expected staleignore diagnostic in vet output, got:\n%s", out)
	}
}

func command(t *testing.T, dir, name string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(name, args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOWORK=off")
	return cmd
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
