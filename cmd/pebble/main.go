// Command pebble runs one of the paper's evaluation scenarios (T1–T5,
// D1–D5) over synthetic data, optionally capturing structural provenance and
// answering the scenario's provenance question.
//
// Usage:
//
//	pebble -scenario T3 [-gb 1] [-partitions 4] [-capture] [-query] [-show-plan]
//
// With -capture the pipeline is executed under structural provenance
// capture; with -query (implies -capture) the scenario's tree-pattern is
// matched on the result and backtraced, printing the provenance report.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pebble/internal/core"
	"pebble/internal/engine"
	"pebble/internal/nested"
	"pebble/internal/treepattern"
	"pebble/internal/workload"
)

func main() {
	scenario := flag.String("scenario", "T3", "scenario name: T1-T5 or D1-D5")
	gb := flag.Int("gb", 1, "simulated input size in GB")
	tweetsPerGB := flag.Int("tweets-per-gb", 200, "tweets per simulated GB")
	recordsPerGB := flag.Int("records-per-gb", 2000, "DBLP records per simulated GB")
	partitions := flag.Int("partitions", 4, "engine partitions")
	capture := flag.Bool("capture", false, "capture structural provenance")
	query := flag.Bool("query", false, "answer the scenario's provenance question (implies -capture)")
	patternStr := flag.String("pattern", "", "custom tree-pattern question (overrides the scenario's), e.g. '//id_str == \"hotuser\"'")
	saveProv := flag.String("save-prov", "", "persist the captured provenance to this file")
	inputFile := flag.String("input", "", "JSONL file replacing the generated dataset (schema must match the scenario; see cmd/datagen)")
	showPlan := flag.Bool("show-plan", false, "print the pipeline plan")
	analyze := flag.Bool("analyze", false, "type-check the plan and print per-operator schemas")
	list := flag.Bool("list", false, "list scenarios and exit")
	flag.Parse()

	if *list {
		for _, sc := range workload.AllScenarios() {
			fmt.Printf("%-3s %-8s %s\n", sc.Name, sc.Dataset, sc.Description)
		}
		return
	}
	sc, err := workload.ByName(*scenario)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	scale := workload.Scale{SimGB: *gb, TweetsPerGB: *tweetsPerGB, RecordsPerGB: *recordsPerGB, Seed: 42}
	inputs := sc.Input(scale, *partitions)
	if *inputFile != "" {
		data, err := os.ReadFile(*inputFile)
		if err != nil {
			log.Fatal(err)
		}
		values, err := nested.ParseJSONLines(data)
		if err != nil {
			log.Fatal(err)
		}
		name := "tweets.json"
		if sc.Dataset == "dblp" {
			name = "dblp.json"
		}
		inputs = map[string]*engine.Dataset{
			name: engine.NewDataset(name, values, *partitions, engine.NewIDGen(1)),
		}
		fmt.Printf("loaded %d items from %s\n", len(values), *inputFile)
	}
	pipe := sc.Build()
	if *showPlan {
		fmt.Printf("plan:\n%s\n\n", pipe)
	}
	if *analyze {
		schemas, err := engine.Analyze(pipe, engine.InferInputTypes(inputs))
		if err != nil {
			log.Fatalf("analysis failed: %v", err)
		}
		fmt.Println("analysis: plan is well-typed; operator output schemas:")
		for _, op := range pipe.Ops() {
			if t, ok := schemas[op.ID()]; ok {
				fmt.Printf("  %-3d %s\n", op.ID(), t)
			}
		}
		fmt.Println()
	}
	session := core.NewSession(core.WithPartitions(*partitions))

	if !*capture && !*query && *patternStr == "" && *saveProv == "" {
		res, err := session.Run(pipe, inputs)
		if err != nil {
			log.Fatal(err)
		}
		printStats(res)
		return
	}
	cap, err := session.Capture(pipe, inputs)
	if err != nil {
		log.Fatal(err)
	}
	printStats(cap.Result)
	sizes := cap.Provenance.Sizes()
	fmt.Printf("provenance: lineage %d B + structural extra %d B = %d B\n",
		sizes.LineageBytes, sizes.StructuralExtra, sizes.Total())
	if *saveProv != "" {
		f, err := os.Create(*saveProv)
		if err != nil {
			log.Fatal(err)
		}
		n, err := cap.Provenance.WriteTo(f)
		if err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("provenance persisted to %s (%d bytes)\n", *saveProv, n)
	}
	if !*query && *patternStr == "" {
		return
	}
	pattern := sc.Pattern
	if *patternStr != "" {
		parsed, err := treepattern.Parse(*patternStr)
		if err != nil {
			log.Fatal(err)
		}
		pattern = parsed
	}
	fmt.Printf("\nprovenance question:%s\n\n", pattern)
	q, err := cap.Query(pattern)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(q.Report())
}

func printStats(res *engine.Result) {
	fmt.Print(res.Explain())
}
