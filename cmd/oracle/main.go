// Command oracle soak-tests the provenance stack: it generates corpus
// pipelines from consecutive seeds and runs the full differential check —
// four capture modes × the configured worker counts — until the time budget
// is spent or a disagreement is found. On disagreement it shrinks the spec
// to a minimal reproducer, writes it under -out, and exits non-zero.
//
// Usage:
//
//	go run ./cmd/oracle -duration 60s -seed 1 -workers 1,2,4
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"pebble/internal/corpus"
	"pebble/internal/oracle"
)

func main() {
	duration := flag.Duration("duration", 60*time.Second, "how long to keep checking pipelines")
	seed := flag.Int64("seed", 1, "first corpus seed; consecutive seeds follow")
	workers := flag.String("workers", "", "comma-separated worker counts to cross-check (default 1,2,NumCPU)")
	partitions := flag.Int("partitions", 4, "logical partition count (fixed across compared runs)")
	out := flag.String("out", "internal/oracle/testdata", "directory for shrunk reproducers")
	flag.Parse()

	cfg := oracle.Config{Partitions: *partitions}
	if *workers != "" {
		for _, tok := range strings.Split(*workers, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || w < 1 {
				fmt.Fprintf(os.Stderr, "oracle: bad -workers entry %q\n", tok)
				os.Exit(2)
			}
			cfg.Workers = append(cfg.Workers, w)
		}
	} else {
		cfg.Workers = oracle.DefaultWorkers()
	}

	fmt.Printf("soak: duration=%s seed=%d workers=%v partitions=%d\n",
		*duration, *seed, cfg.Workers, *partitions)
	start := time.Now()
	deadline := start.Add(*duration)
	checked := 0
	for s := *seed; time.Now().Before(deadline); s++ {
		spec := corpus.Generate(s)
		if d := oracle.CheckSpec(spec, cfg); d != nil {
			fmt.Fprintf(os.Stderr, "DISAGREEMENT after %d pipelines: %v\n", checked, d)
			shrunk, sd := oracle.Shrink(spec, cfg)
			if sd != nil {
				jsonPath, goPath, err := oracle.WriteRepro(*out, shrunk, sd)
				if err != nil {
					// Exit distinctly: the disagreement is real but the
					// reproducer was lost, so the run is not replayable.
					fmt.Fprintf(os.Stderr, "writing reproducer: %v\n", err)
					os.Exit(3)
				}
				fmt.Fprintf(os.Stderr, "shrunk to %d operators / %d rows; reproducer: %s, %s\n",
					shrunk.NumOps(), len(shrunk.Rows), jsonPath, goPath)
			}
			os.Exit(1)
		}
		checked++
	}
	elapsed := time.Since(start)
	fmt.Printf("soak: %d pipelines, 0 disagreements in %s (%.1f pipelines/sec)\n",
		checked, elapsed.Round(time.Millisecond), float64(checked)/elapsed.Seconds())
}
