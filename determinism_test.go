// Determinism regression tests for the logical/physical split (schedule.go):
// logical partitioning fixes results, identifiers, and captured provenance;
// the physical worker count may only change wall time. Every Twitter and
// DBLP scenario must produce byte-identical output for any Workers setting.
package pebble_test

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"

	"pebble/internal/engine"
	"pebble/internal/lazy"
	"pebble/internal/lineage"
	"pebble/internal/nested"
	"pebble/internal/provenance"
	"pebble/internal/workload"
)

// captureFingerprint runs a scenario under provenance capture and returns
// everything that must be schedule-independent: output rows (ids + values),
// per-source row ids, and the serialized run bytes.
func captureFingerprint(t *testing.T, sc workload.Scenario, inputs map[string]*engine.Dataset, workers int) (*engine.Result, []byte) {
	t.Helper()
	opts := engine.Options{Partitions: 4, Workers: workers}
	res, run, err := provenance.Capture(sc.Build(), inputs, opts)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	var buf bytes.Buffer
	if _, err := run.WriteTo(&buf); err != nil {
		t.Fatalf("workers=%d: serialize run: %v", workers, err)
	}
	return res, buf.Bytes()
}

func sameRows(a, b *engine.Dataset) error {
	ra, rb := a.Rows(), b.Rows()
	if len(ra) != len(rb) {
		return fmt.Errorf("row counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].ID != rb[i].ID {
			return fmt.Errorf("row %d: id %d vs %d", i, ra[i].ID, rb[i].ID)
		}
		if !nested.Equal(ra[i].Value, rb[i].Value) {
			return fmt.Errorf("row %d (id %d): values differ", i, ra[i].ID)
		}
	}
	return nil
}

// lineageFingerprint captures Titian-style lineage and renders the output
// rows plus the full-result backtracing join canonically.
func lineageFingerprint(t *testing.T, sc workload.Scenario, inputs map[string]*engine.Dataset, workers int) string {
	t.Helper()
	pipe := sc.Build()
	opts := engine.Options{Partitions: 4, Workers: workers}
	res, run, err := lineage.Capture(pipe, inputs, opts)
	if err != nil {
		t.Fatalf("lineage workers=%d: %v", workers, err)
	}
	var b strings.Builder
	outIDs := make([]int64, 0, len(res.Output.Rows()))
	for _, row := range res.Output.Rows() {
		fmt.Fprintf(&b, "%d:%s\n", row.ID, row.Value)
		outIDs = append(outIDs, row.ID)
	}
	traced, err := run.Trace(pipe.Sink().ID(), outIDs)
	if err != nil {
		t.Fatalf("lineage trace workers=%d: %v", workers, err)
	}
	oids := make([]int, 0, len(traced))
	for oid := range traced {
		oids = append(oids, oid)
	}
	sort.Ints(oids)
	for _, oid := range oids {
		fmt.Fprintf(&b, "src %d: %v\n", oid, traced[oid])
	}
	return b.String()
}

// lazyFingerprint answers the scenario's provenance question lazily and
// renders the per-source contributing structures canonically.
func lazyFingerprint(t *testing.T, sc workload.Scenario, inputs map[string]*engine.Dataset, workers int) string {
	t.Helper()
	opts := engine.Options{Partitions: 4, Workers: workers}
	res, _, err := lazy.Query(sc.Build, inputs, sc.Pattern, opts)
	if err != nil {
		t.Fatalf("lazy workers=%d: %v", workers, err)
	}
	oids := make([]int, 0, len(res.BySource))
	for oid := range res.BySource {
		oids = append(oids, oid)
	}
	sort.Ints(oids)
	var b strings.Builder
	for _, oid := range oids {
		fmt.Fprintf(&b, "src %d:\n", oid)
		st := res.BySource[oid]
		for _, it := range st.Items {
			fmt.Fprintf(&b, "  %d (orig %d): %s\n", it.ID, res.OrigIDs[oid][it.ID], it.Tree)
		}
	}
	return b.String()
}

// TestLineageAndLazyDeterminismAcrossWorkers extends the eager determinism
// regression to the other capture modes: Titian-style lineage runs and
// PROVision-style lazy queries must also be byte-identical for any Workers
// setting.
func TestLineageAndLazyDeterminismAcrossWorkers(t *testing.T) {
	workersList := []int{1, 2, runtime.NumCPU()}
	scenarios := append(workload.TwitterScenarios(), workload.DBLPScenarios()...)
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			inputs := sc.Input(workload.DefaultScale(1), 4)
			baseLin := lineageFingerprint(t, sc, inputs, workersList[0])
			baseLazy := lazyFingerprint(t, sc, inputs, workersList[0])
			for _, workers := range workersList[1:] {
				if lin := lineageFingerprint(t, sc, inputs, workers); lin != baseLin {
					t.Errorf("workers=%d: lineage fingerprint differs from workers=%d", workers, workersList[0])
				}
				if lz := lazyFingerprint(t, sc, inputs, workers); lz != baseLazy {
					t.Errorf("workers=%d: lazy fingerprint differs from workers=%d", workers, workersList[0])
				}
			}
		})
	}
}

// TestDeterminismAcrossWorkers runs T1–T5 and D1–D5 with Workers ∈ {1, 2,
// NumCPU} and asserts identical results, identifiers, and captured runs.
// Running under `go test -race` additionally exercises the DAG scheduler,
// the worker pool, and the parallel shuffle for data races.
func TestDeterminismAcrossWorkers(t *testing.T) {
	workersList := []int{1, 2, runtime.NumCPU()}
	scenarios := append(workload.TwitterScenarios(), workload.DBLPScenarios()...)
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			inputs := sc.Input(workload.DefaultScale(1), 4)
			baseRes, baseRun := captureFingerprint(t, sc, inputs, workersList[0])
			for _, workers := range workersList[1:] {
				res, runBytes := captureFingerprint(t, sc, inputs, workers)
				if err := sameRows(baseRes.Output, res.Output); err != nil {
					t.Errorf("workers=%d: output differs from workers=%d: %v", workers, workersList[0], err)
				}
				if len(res.Sources) != len(baseRes.Sources) {
					t.Fatalf("workers=%d: %d sources, want %d", workers, len(res.Sources), len(baseRes.Sources))
				}
				for oid, base := range baseRes.Sources {
					got, ok := res.Sources[oid]
					if !ok {
						t.Fatalf("workers=%d: missing source %d", workers, oid)
					}
					if err := sameRows(base, got); err != nil {
						t.Errorf("workers=%d: source %d differs: %v", workers, oid, err)
					}
				}
				if !bytes.Equal(baseRun, runBytes) {
					t.Errorf("workers=%d: serialized provenance run differs from workers=%d (%d vs %d bytes)",
						workers, workersList[0], len(runBytes), len(baseRun))
				}
			}
		})
	}
}
