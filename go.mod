module pebble

go 1.22
