# Developer entry points. `make check` is the gate PRs must pass: vet (with
# the pebblevet analyzers), formatting, and the full suite under the race
# detector.

.PHONY: build test check serve-smoke bench bench-overhead bench-codec bench-query bench-vectors bench-joinagg breakdown scaling soak pebblevet pebblevet-fix-list

build:
	go build ./...

test:
	go test ./...

# The project's own static-analysis suite (determinism, capturesound,
# lockcheck, codecerr, poolescape, rangecapture, hotalloc, plus the
# staleignore directive audit — see DESIGN.md §6 and §11). Builds the
# vettool into bin/ and runs it repo-wide; a clean exit is part of the gate.
pebblevet:
	go build -o bin/pebblevet ./cmd/pebblevet
	go vet -vettool=bin/pebblevet ./...

# The same run collapsed to unique file:line sites — paste-ready for working
# through findings one location at a time.
pebblevet-fix-list:
	@go build -o bin/pebblevet ./cmd/pebblevet
	@go vet -vettool=bin/pebblevet ./... 2>&1 | sed -n 's/^\(.*\.go:[0-9]*\):.*/\1/p' | sort -u

check: pebblevet
	sh scripts/check.sh

# Daemon smoke gate (blocking in CI): boot pebbled on an ephemeral port,
# drive a scenario end-to-end through the pkg/sdk client — capture, event
# stream, provenance download, remote trace — and require the daemon's
# provenance bytes and trace report to be identical to a direct library
# execution (see cmd/pebbled and DESIGN.md §12). One twitter and one dblp
# scenario cover both input shapes.
serve-smoke:
	go run ./cmd/pebbled -smoke T3
	go run ./cmd/pebbled -smoke D1

bench:
	go test -bench . -benchtime 1x ./...

# Observability overhead gate: fails when attaching a metrics recorder to a
# capture run costs more than 2% (see DESIGN.md §7; CI runs this
# non-blocking because shared runners are noisy).
bench-overhead:
	go run ./cmd/benchrunner -exp overheadgate -gb 50 -reps 5 -gate-pct 2

# Codec comparison: v1 fixed-width vs v2 columnar delta+varint stream sizes
# and encode/decode times over every scenario; regenerates the committed
# baseline (BENCH_PR5.json, EXPERIMENTS.md; DESIGN.md §8 documents the
# format).
bench-codec:
	go run ./cmd/benchrunner -exp codec -gb 10 -reps 5 -out BENCH_PR5.json

# Query-side raw-speed sweep: cold (eager decode + index rebuild) vs warm
# (lazy decode + persisted index sidecar) reload-and-trace, plus interpreted
# vs compiled tree-pattern matching; regenerates the committed baseline
# (BENCH_PR6.json, EXPERIMENTS.md; DESIGN.md §9 documents the sidecar
# format).
bench-query:
	go run ./cmd/benchrunner -exp query -gb 25 -reps 5 -out BENCH_PR6.json

# Vectorization sweep: columnar batch executor vs the legacy row path for
# every scenario, plain and under eager capture, including the byte-identity
# cross-check; regenerates the committed baseline (BENCH_PR7.json,
# EXPERIMENTS.md; DESIGN.md §10 documents the batch layout).
bench-vectors:
	go run ./cmd/benchrunner -exp vectors -gb 25 -reps 5 -out BENCH_PR7.json

# Join/aggregate kernel sweep: the vectorized join-probe and aggregate
# kernels vs the scalar reference path on join/aggregate-dominated pipelines
# (broadcast and shuffle join shapes, numeric and collect aggregates), plain
# and under eager capture, including the byte-identity cross-check;
# regenerates the committed baseline (BENCH_PR10.json, EXPERIMENTS.md;
# DESIGN.md §13 documents the kernels).
bench-joinagg:
	go run ./cmd/benchrunner -exp joinagg -gb 25 -reps 12 -out BENCH_PR10.json

# Regenerate the per-operator capture breakdown baseline (BENCH_PR4.json,
# EXPERIMENTS.md).
breakdown:
	go run ./cmd/benchrunner -exp breakdown -gb 100 -reps 5 -out BENCH_PR4.json

# Regenerate the worker-scaling baseline (see BENCH_PR1.json and
# EXPERIMENTS.md; numbers are only meaningful on a multi-core machine).
scaling:
	go run ./cmd/benchrunner -exp scaling -gb 50 -reps 5 -workers 1,2,4 -out BENCH_PR1.json

# Differential soak: random pipelines under all four capture modes and
# several worker counts until the time budget runs out (see EXPERIMENTS.md).
soak:
	go run ./cmd/oracle -duration 60s
